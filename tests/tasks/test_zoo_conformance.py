"""Conformance sweep: every zoo task obeys the full task contract.

One parametrized battery over the complete CLI-addressable zoo: paper
definition validation, reachability, serialization round-trip, colorless
projection, and the analysis report — the baseline guarantees a
downstream user relies on for *any* task the library hands out.
"""

import pytest

from repro.__main__ import ZOO
from repro.io import task_from_json, task_to_json
from repro.tasks.canonical import canonicalize_if_needed, is_canonical

ZOO_ITEMS = sorted(ZOO.items())
ZOO_IDS = [name for name, _ in ZOO_ITEMS]


@pytest.fixture(scope="module")
def zoo_tasks():
    return {name: make() for name, make in ZOO_ITEMS}


@pytest.mark.parametrize("name", ZOO_IDS)
class TestZooConformance:
    def test_validates(self, name, zoo_tasks):
        zoo_tasks[name].validate()

    def test_reachable_or_restrictable(self, name, zoo_tasks):
        task = zoo_tasks[name]
        trimmed = task.restrict_to_reachable()
        assert trimmed.is_output_reachable()
        trimmed.validate()

    def test_serialization_roundtrip(self, name, zoo_tasks):
        task = zoo_tasks[name]
        assert task_from_json(task_to_json(task)) == task

    def test_colorless_variant_builds(self, name, zoo_tasks):
        variant = zoo_tasks[name].colorless_variant()
        assert variant.delta.is_monotonic()

    def test_canonicalization_succeeds(self, name, zoo_tasks):
        cf = canonicalize_if_needed(zoo_tasks[name].restrict_to_reachable())
        assert is_canonical(cf.task)
        cf.task.validate()

    def test_delta_contract(self, name, zoo_tasks):
        task = zoo_tasks[name]
        assert task.delta.is_monotonic()
        assert task.delta.is_rigid()
        assert task.delta.is_chromatic()
        assert task.delta.is_strict()

    def test_colors_consistent(self, name, zoo_tasks):
        task = zoo_tasks[name]
        assert task.input_complex.colors() == task.output_complex.colors()
        assert task.input_complex.is_properly_colored_by(task.n_processes)
