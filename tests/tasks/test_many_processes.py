"""Section 3 works for any number of processes (Theorem 3.1's generality).

The splitting machinery is three-process-specific, but canonicalization
and the task model are not; these tests run them at n = 4 to catch hidden
three-process assumptions.
"""

import pytest

from repro.splitting.deformation import SplittingError, split_lap
from repro.splitting.lap import LocalArticulationPoint, local_articulation_points
from repro.tasks.canonical import canonicalize, is_canonical
from repro.tasks.zoo import consensus_task, identity_task, set_agreement_task


class TestFourProcessTasks:
    def test_identity_valid(self):
        t = identity_task(4)
        t.validate()
        assert t.n_processes == 4
        assert t.input_complex.dim == 3

    def test_consensus_valid(self):
        t = consensus_task(4)
        t.validate()
        assert len(t.output_complex.facets) == 2

    def test_set_agreement_valid(self):
        t = set_agreement_task(4, 3, values=(0, 1))
        t.validate()

    def test_canonicalize_consensus(self):
        t = consensus_task(4)
        cf = canonicalize(t)
        cf.task.validate()
        assert is_canonical(cf.task)
        assert cf.task.input_complex == t.input_complex

    def test_canonical_projection(self):
        t = consensus_task(4)
        cf = canonicalize(t)
        for w in cf.task.output_complex.vertices:
            assert cf.project_vertex(w) in set(t.output_complex.vertices)

    def test_lap_detection_runs(self):
        # links are 2-dimensional here; detection must still work
        t = consensus_task(4)
        laps = local_articulation_points(t)
        assert isinstance(laps, tuple)

    def test_splitting_guarded(self):
        t = consensus_task(4)
        sigma = t.input_complex.facets[0]
        dummy = LocalArticulationPoint(
            vertex=t.output_complex.vertices[0],
            facet=sigma,
            components=(frozenset(), frozenset()),
        )
        with pytest.raises(SplittingError, match="three-process"):
            split_lap(t, dummy)

    def test_decision_guarded(self):
        from repro.solvability import decide_solvability

        with pytest.raises(ValueError, match="three"):
            decide_solvability(identity_task(4))

    def test_colorless_variant(self):
        c = identity_task(4).colorless_variant()
        assert c.input_complex.dim == 1  # values {0,1} collapse
