"""Unit tests for the task zoo: every task matches its paper description."""

import itertools

import pytest

from repro.tasks.zoo import (
    HOURGLASS_TRIANGLES,
    annulus_loop,
    consensus_task,
    constant_task,
    full_input_complex,
    hourglass_articulation_vertex,
    identity_task,
    inputless_set_agreement_task,
    loop_agreement_task,
    majority_consensus_task,
    path_task,
    pinwheel_task,
    pinwheel_triangles,
    set_agreement_task,
    single_facet_input,
    triangle_loop,
    two_process_fork_task,
)
from repro.topology.simplex import Simplex, Vertex, chrom


class TestBuilders:
    def test_full_input_complex_counts(self):
        k = full_input_complex(3, (0, 1))
        assert len(k.facets) == 8
        assert k.dim == 2

    def test_full_input_needs_values(self):
        with pytest.raises(ValueError):
            full_input_complex(2, ())

    def test_single_facet_defaults(self):
        k = single_facet_input(3)
        assert len(k.facets) == 1
        assert k.facets[0] == chrom((0, 0), (1, 1), (2, 2))

    def test_single_facet_arity_checked(self):
        with pytest.raises(ValueError):
            single_facet_input(3, values=("a",))


class TestConsensus:
    def test_structure(self):
        t = consensus_task(3)
        assert len(t.output_complex.facets) == 2
        assert t.n_processes == 3

    def test_solo_decides_own_input(self):
        t = consensus_task(3)
        img = t.delta(chrom((1, 0)))
        assert img.vertices == (Vertex(1, 0),)

    def test_mixed_edge_allows_both(self):
        t = consensus_task(3)
        img = t.delta(chrom((0, 0), (1, 1)))
        assert len(img.facets) == 2

    def test_agreement_enforced(self):
        t = consensus_task(3)
        sigma = chrom((0, 0), (1, 1), (2, 0))
        for f in t.delta(sigma).facets:
            assert len({v.value for v in f.vertices}) == 1

    def test_two_process(self):
        t = consensus_task(2)
        assert t.n_processes == 2


class TestSetAgreement:
    def test_output_facet_count(self):
        t = set_agreement_task(3, 2)
        assert len(t.output_complex.facets) == 21  # 27 - 6 rainbow

    def test_k_bound_enforced(self):
        t = set_agreement_task(3, 2)
        sigma = chrom((0, 0), (1, 1), (2, 2))
        for f in t.delta(sigma).facets:
            assert len({v.value for v in f.vertices}) <= 2

    def test_validity(self):
        t = set_agreement_task(3, 2)
        sigma = chrom((0, 0), (1, 0), (2, 1))
        for f in t.delta(sigma).facets:
            assert {v.value for v in f.vertices} <= {0, 1}

    def test_k_range_checked(self):
        with pytest.raises(ValueError):
            set_agreement_task(3, 0)
        with pytest.raises(ValueError):
            set_agreement_task(3, 4)

    def test_3set_is_full(self):
        t = set_agreement_task(3, 3)
        assert len(t.output_complex.facets) == 27

    def test_inputless_variant(self):
        t = inputless_set_agreement_task(3, 2)
        assert len(t.input_complex.facets) == 1
        assert t.is_output_reachable()


class TestMajorityConsensus:
    def test_output_triples(self, majority):
        values = {
            tuple(v.value for v in f.sorted_vertices())
            for f in majority.output_complex.facets
        }
        assert values == {(0, 0, 0), (1, 1, 1), (0, 0, 1), (0, 1, 0), (1, 0, 0)}

    def test_full_participation_constraint(self, majority):
        sigma = chrom((0, 0), (1, 1), (2, 1))
        triples = {
            tuple(v.value for v in f.sorted_vertices())
            for f in majority.delta(sigma).facets
        }
        for t in triples:
            zeros, ones = t.count(0), t.count(1)
            assert len(set(t)) == 1 or zeros > ones

    def test_two_participants_unconstrained(self, majority):
        e = chrom((1, 0), (2, 1))
        pairs = {
            tuple(v.value for v in f.sorted_vertices())
            for f in majority.delta(e).facets
        }
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_solo(self, majority):
        img = majority.delta(chrom((2, 1)))
        assert img.vertices == (Vertex(2, 1),)

    def test_validity_all_zero_input(self, majority):
        sigma = chrom((0, 0), (1, 0), (2, 0))
        assert len(majority.delta(sigma).facets) == 1


class TestHourglass:
    def test_five_triangles(self, hourglass):
        assert len(hourglass.output_complex.facets) == 5

    def test_single_input_facet(self, hourglass):
        assert len(hourglass.input_complex.facets) == 1

    def test_waist_is_global_articulation(self, hourglass):
        y = hourglass_articulation_vertex()
        comps = hourglass.output_complex.link_components(y)
        assert len(comps) == 2

    def test_waist_link_components_match_paper(self, hourglass):
        # one component contains P1's value-1 vertex (Figure 2, right)
        y = hourglass_articulation_vertex()
        comps = hourglass.output_complex.link_components(y)
        b1 = Vertex(1, 1)
        assert any(b1 in c for c in comps)
        assert not all(b1 in c for c in comps)

    def test_only_waist_is_articulation(self, hourglass):
        from repro.topology.links import articulation_vertices

        assert articulation_vertices(hourglass.output_complex) == (
            hourglass_articulation_vertex(),
        )

    def test_solo_decisions_are_zero(self, hourglass):
        for x in hourglass.input_complex.vertices:
            (v,) = hourglass.delta(Simplex([x])).vertices
            assert v.value == 0

    def test_edge_images_are_three_edge_paths(self, hourglass):
        for e in hourglass.input_complex.simplices(dim=1):
            img = hourglass.delta(e)
            assert len(img.facets) == 3
            assert img.is_connected()

    def test_full_image_is_whole_complex(self, hourglass):
        sigma = hourglass.input_complex.facets[0]
        assert set(hourglass.delta(sigma).facets) == set(HOURGLASS_TRIANGLES)

    def test_realization_contractible(self, hourglass):
        # the colorless-ACT hypothesis: |O| is contractible (b0=1, b1=0)
        from repro.topology.homology import betti_numbers

        assert betti_numbers(hourglass.output_complex) == (1, 0, 0)


class TestPinwheel:
    def test_twelve_triangles(self, pinwheel):
        assert len(pinwheel_triangles()) == 12
        assert len(pinwheel.output_complex.facets) == 12

    def test_subtask_of_2set_agreement(self, pinwheel):
        two_set = inputless_set_agreement_task(3, 2)
        for sigma in pinwheel.input_complex.simplices():
            assert pinwheel.delta(sigma).is_subcomplex_of(two_set.delta(sigma))

    def test_all_edges_intact(self, pinwheel):
        # "it leaves intact the outputs for the edges"
        assert len(pinwheel.output_complex.simplices(dim=1)) == 27

    def test_rotational_symmetry(self, pinwheel):
        def rho(v: Vertex) -> Vertex:
            return Vertex((v.color + 1) % 3, (v.value + 1) % 3)

        facets = set(pinwheel.output_complex.facets)
        for f in facets:
            assert Simplex(rho(v) for v in f.vertices) in facets

    def test_edge_image_is_four_cycle(self, pinwheel):
        # "a cycle of four edges can be decided for each input edge"
        for e in pinwheel.input_complex.simplices(dim=1):
            img = pinwheel.delta(e)
            assert len(img.facets) == 4
            assert len(img.vertices) == 4
            from repro.topology.homology import betti_numbers

            assert betti_numbers(img) == (1, 1)

    def test_every_vertex_is_lap(self, pinwheel):
        from repro.splitting import local_articulation_points

        laps = local_articulation_points(pinwheel)
        assert {l.vertex for l in laps} == set(pinwheel.output_complex.vertices)

    def test_diagonal_links_have_two_components(self, pinwheel):
        sigma = pinwheel.input_complex.facets[0]
        img = pinwheel.delta(sigma)
        for i in range(3):
            assert len(img.link_components(Vertex(i, i))) == 2


class TestLoopAgreement:
    def test_triangle_loops(self):
        filled = triangle_loop(True)
        hollow = triangle_loop(False)
        assert filled.complex.dim == 2
        assert hollow.complex.dim == 1

    def test_loop_rejects_non_edge_path(self):
        from repro.tasks.zoo import Loop
        from repro.topology.complexes import SimplicialComplex

        k = SimplicialComplex([("u", "v"), ("u", "w")])  # no v-w edge
        with pytest.raises(ValueError, match="non-edge"):
            Loop(k, ("u", "v", "w"), (("u", "v"), ("v", "w"), ("w", "u")))

    def test_loop_rejects_mismatched_corners(self):
        from repro.tasks.zoo import Loop
        from repro.topology.complexes import SimplicialComplex

        k = SimplicialComplex([("u", "v"), ("v", "w"), ("w", "u")])
        with pytest.raises(ValueError, match="corners"):
            Loop(k, ("u", "v", "w"), (("u", "v"), ("v", "w"), ("u", "w")))

    def test_full_cycle(self):
        loop = triangle_loop(True)
        assert loop.full_cycle() == ("u", "v", "w", "u")

    def test_same_corner_decides_corner(self):
        t = loop_agreement_task(triangle_loop(True))
        sigma = chrom((0, 1), (1, 1), (2, 1))
        for f in t.delta(sigma).facets:
            assert {v.value for v in f.vertices} == {"v"}

    def test_two_corners_decide_on_path(self):
        t = loop_agreement_task(triangle_loop(True))
        sigma = chrom((0, 0), (1, 1), (2, 0))
        for f in t.delta(sigma).facets:
            assert {v.value for v in f.vertices} <= {"u", "v"}

    def test_annulus_loop_valid(self):
        loop = annulus_loop()
        from repro.topology.homology import betti_numbers

        assert betti_numbers(loop.complex) == (1, 1, 0)

    def test_path_between_orientation(self):
        loop = triangle_loop(True)
        assert loop.path_between(0, 2) == ("w", "u")


class TestTrivialTasks:
    def test_identity(self, identity3):
        sigma = identity3.input_complex.facets[0]
        assert identity3.delta(sigma).facets == (sigma,)

    def test_constant(self):
        t = constant_task(3, constant=1)
        sigma = t.input_complex.facets[0]
        (f,) = t.delta(sigma).facets
        assert all(v.value == 1 for v in f.vertices)


class TestTestAndSet:
    def test_structure(self):
        from repro.tasks.zoo import test_and_set_task

        t = test_and_set_task(3)
        assert len(t.output_complex.facets) == 3
        for f in t.output_complex.facets:
            assert sorted(v.value for v in f.vertices) == [0, 1, 1]

    def test_solo_wins(self):
        from repro.tasks.zoo import test_and_set_task

        t = test_and_set_task(3)
        for x in t.input_complex.vertices:
            (v,) = t.delta(Simplex([x])).vertices
            assert v.value == 0

    def test_pair_images_are_two_disjoint_edges(self):
        from repro.tasks.zoo import test_and_set_task

        t = test_and_set_task(3)
        for e in t.input_complex.simplices(dim=1):
            img = t.delta(e)
            assert len(img.facets) == 2
            assert len(img.connected_components()) == 2

    def test_minimum_processes(self):
        from repro.tasks.zoo import test_and_set_task

        with pytest.raises(ValueError):
            test_and_set_task(1)

    @pytest.mark.parametrize("n", [2, 3])
    def test_unsolvable(self, n):
        from repro import decide_solvability
        from repro.tasks.zoo import test_and_set_task

        assert decide_solvability(test_and_set_task(n)).solvable is False


class TestTwoProcessTasks:
    def test_path_task_structure(self):
        t = path_task(5)
        assert len(t.output_complex.facets) == 5
        assert t.n_processes == 2

    def test_path_length_must_be_odd(self):
        with pytest.raises(ValueError):
            path_task(2)

    def test_fork_images_disconnected(self):
        t = two_process_fork_task()
        e = t.input_complex.facets[0]
        assert len(t.delta(e).connected_components()) == 2
