"""Unit tests for approximate agreement."""

import pytest

from repro.solvability import Status, decide_solvability
from repro.tasks.zoo import approximate_agreement_task
from repro.topology.simplex import chrom


class TestConstruction:
    def test_k1_is_wide_consensus(self):
        t = approximate_agreement_task(1)
        t.validate()
        # spread <= 1 over {0, 1}: all 8 triples allowed
        assert len(t.output_complex.facets) == 8

    def test_k2_output_count(self):
        t = approximate_agreement_task(2)
        # triples over {0,1,2} with spread <= 1: 2 windows of 8 minus shared 1
        assert len(t.output_complex.facets) == 15

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            approximate_agreement_task(0)

    def test_validity_constraint(self):
        t = approximate_agreement_task(2)
        sigma = chrom((0, 0), (1, 0), (2, 0))
        for f in t.delta(sigma).facets:
            assert {v.value for v in f.vertices} == {0}

    def test_range_constraint_mixed(self):
        t = approximate_agreement_task(2)
        sigma = chrom((0, 0), (1, 1), (2, 1))
        for f in t.delta(sigma).facets:
            values = {v.value for v in f.vertices}
            assert values <= {0, 1, 2}
            assert max(values) - min(values) <= 1

    def test_solo_decides_own_scaled_input(self):
        t = approximate_agreement_task(3)
        (v,) = t.delta(chrom((1, 1))).vertices
        assert v.value == 3  # input 1 scaled by k


class TestSolvability:
    def test_k1_zero_rounds(self):
        v = decide_solvability(approximate_agreement_task(1), max_rounds=1)
        assert v.status is Status.SOLVABLE
        assert v.witness_rounds == 0

    def test_k2_needs_one_round(self):
        v = decide_solvability(approximate_agreement_task(2), max_rounds=1)
        assert v.status is Status.SOLVABLE
        assert v.witness_rounds == 1

    def test_no_obstruction_fires(self):
        from repro.solvability import (
            corollary_5_5,
            corollary_5_6,
            homological_obstruction,
        )

        t = approximate_agreement_task(2)
        assert corollary_5_5(t) is None
        assert homological_obstruction(t) is None
