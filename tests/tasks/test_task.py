"""Unit tests for the Task model."""

import pytest

from repro.tasks.task import (
    ColorlessTask,
    Task,
    TaskError,
    delta_from_function,
    task_from_function,
)
from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, Vertex, chrom


@pytest.fixture
def tiny_task():
    """One input facet, one output facet, identity-like Δ."""
    inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))], name="I")
    outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))], name="O")

    def rule(sigma):
        yield Simplex(
            Vertex(v.color, {"x": "p", "y": "q"}[v.value]) for v in sigma.vertices
        )

    return task_from_function(inputs, outputs, rule, name="tiny")


class TestValidation:
    def test_valid_task(self, tiny_task):
        tiny_task.validate()

    def test_hourglass_valid(self, hourglass):
        hourglass.validate()

    def test_dimension_mismatch(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex([chrom((0, "p"))])
        with pytest.raises(TaskError, match="dimension"):
            Task(inputs, outputs, {})

    def test_non_chromatic_input_rejected(self):
        inputs = SimplicialComplex([("a", "b")])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        with pytest.raises(TaskError, match="chromatic"):
            Task(inputs, outputs, {})

    def test_impure_input_rejected(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y")), chrom((2, "z"))])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        with pytest.raises(TaskError, match="pure"):
            Task(inputs, outputs, {})

    def test_empty_image_rejected(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        delta = {chrom((0, "x"), (1, "y")): [chrom((0, "p"), (1, "q"))]}
        with pytest.raises(TaskError, match="empty"):
            Task(inputs, outputs, delta)

    def test_non_rigid_rejected(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        delta = {
            chrom((0, "x")): [chrom((0, "p"))],
            chrom((1, "y")): [chrom((1, "q"))],
            chrom((0, "x"), (1, "y")): [chrom((0, "p"))],  # image too small
        }
        with pytest.raises(TaskError):
            Task(inputs, outputs, delta)

    def test_non_chromatic_delta_rejected(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        delta = {
            chrom((0, "x")): [chrom((1, "q"))],  # wrong color
            chrom((1, "y")): [chrom((1, "q"))],
            chrom((0, "x"), (1, "y")): [chrom((0, "p"), (1, "q"))],
        }
        with pytest.raises(TaskError):
            Task(inputs, outputs, delta)

    def test_wrong_delta_domain_rejected(self, tiny_task):
        other = ChromaticComplex([chrom((0, "zz"), (1, "ww"))])
        delta = CarrierMap(other, tiny_task.output_complex, {}, check=False)
        with pytest.raises(TaskError, match="domain"):
            Task(tiny_task.input_complex, tiny_task.output_complex, delta)


class TestStructure:
    def test_n_processes(self, tiny_task, hourglass):
        assert tiny_task.n_processes == 2
        assert hourglass.n_processes == 3

    def test_colors(self, hourglass):
        assert hourglass.colors == frozenset({0, 1, 2})

    def test_input_facets(self, hourglass):
        assert len(hourglass.input_facets()) == 1

    def test_outputs_for_raw(self, tiny_task):
        img = tiny_task.outputs_for([Vertex(0, "x")])
        assert img.vertices == (Vertex(0, "p"),)

    def test_repr_contains_name(self, tiny_task):
        assert "tiny" in repr(tiny_task)

    def test_equality(self, tiny_task):
        clone = Task(
            tiny_task.input_complex,
            tiny_task.output_complex,
            tiny_task.delta,
            name="other-name",
        )
        assert clone == tiny_task
        assert hash(clone) == hash(tiny_task)


class TestReachability:
    def test_reachable_outputs(self, hourglass):
        assert hourglass.is_output_reachable()

    def test_restrict_to_reachable(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex(
            [chrom((0, "p"), (1, "q")), chrom((0, "dead"), (1, "dead"))]
        )
        delta = {
            chrom((0, "x")): [chrom((0, "p"))],
            chrom((1, "y")): [chrom((1, "q"))],
            chrom((0, "x"), (1, "y")): [chrom((0, "p"), (1, "q"))],
        }
        task = Task(inputs, outputs, delta)
        assert not task.is_output_reachable()
        trimmed = task.restrict_to_reachable()
        assert trimmed.is_output_reachable()
        assert len(trimmed.output_complex.facets) == 1


class TestLegalOutputs:
    def test_legal(self, tiny_task):
        sigma = chrom((0, "x"), (1, "y"))
        decisions = {0: Vertex(0, "p"), 1: Vertex(1, "q")}
        assert tiny_task.is_legal_output(sigma, decisions)

    def test_missing_process(self, tiny_task):
        sigma = chrom((0, "x"), (1, "y"))
        assert not tiny_task.is_legal_output(sigma, {0: Vertex(0, "p")})

    def test_wrong_color(self, tiny_task):
        sigma = chrom((0, "x"), (1, "y"))
        decisions = {0: Vertex(1, "q"), 1: Vertex(1, "q")}
        assert not tiny_task.is_legal_output(sigma, decisions)

    def test_not_in_delta(self, tiny_task):
        sigma = chrom((0, "x"), (1, "y"))
        decisions = {0: Vertex(0, "p"), 1: Vertex(1, "nope")}
        assert not tiny_task.is_legal_output(sigma, decisions)


class TestColorlessVariant:
    def test_hourglass_colorless(self, hourglass):
        c = hourglass.colorless_variant()
        assert isinstance(c, ColorlessTask)
        assert c.input_complex.dim == 2
        # output values are 0, 1, 2
        assert set(c.output_complex.vertices) == {0, 1, 2}

    def test_colorless_carrier_monotone(self, hourglass):
        c = hourglass.colorless_variant()
        assert c.delta.is_monotonic()

    def test_repr(self, hourglass):
        c = hourglass.colorless_variant()
        assert "colorless" in repr(c)


class TestBuilders:
    def test_delta_from_function(self, tiny_task):
        delta = delta_from_function(
            tiny_task.input_complex,
            tiny_task.output_complex,
            lambda s: tiny_task.delta(s).facets,
        )
        assert delta == tiny_task.delta

    def test_task_from_function_validates(self):
        inputs = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        outputs = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        with pytest.raises(TaskError):
            task_from_function(inputs, outputs, lambda s: [])
