"""Unit tests for the random task generators."""

import pytest

from repro.tasks.canonical import is_canonical
from repro.tasks.zoo import (
    random_output_complex,
    random_single_input_task,
    random_sparse_task,
)


class TestRandomOutputComplex:
    def test_properties(self):
        import random

        k = random_output_complex(random.Random(5), n_values=3, n_facets=6)
        assert k.dim == 2
        assert k.is_chromatic()

    def test_seeded_determinism(self):
        import random

        a = random_output_complex(random.Random(9))
        b = random_output_complex(random.Random(9))
        assert a == b


class TestRandomTasks:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_tasks(self, seed):
        task = random_single_input_task(seed)
        task.validate()
        assert task.n_processes == 3
        assert task.is_output_reachable()

    def test_deterministic(self):
        assert random_single_input_task(4) == random_single_input_task(4)

    def test_different_seeds_differ(self):
        tasks = {random_single_input_task(s) for s in range(6)}
        assert len(tasks) > 1

    @pytest.mark.parametrize("seed", range(6))
    def test_sparse_valid(self, seed):
        task = random_sparse_task(seed)
        task.validate()

    def test_single_facet_tasks_canonical(self):
        # single input facet + per-ids induced images => unique preimages
        for seed in range(5):
            assert is_canonical(random_single_input_task(seed))
