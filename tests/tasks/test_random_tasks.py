"""Unit tests for the random task generators."""

import os
import random
import subprocess
import sys

import pytest

from repro.tasks.canonical import is_canonical
from repro.tasks.zoo import (
    random_output_complex,
    random_single_input_task,
    random_sparse_task,
)


class TestRandomOutputComplex:
    def test_properties(self):
        import random

        k = random_output_complex(random.Random(5), n_values=3, n_facets=6)
        assert k.dim == 2
        assert k.is_chromatic()

    def test_seeded_determinism(self):
        import random

        a = random_output_complex(random.Random(9))
        b = random_output_complex(random.Random(9))
        assert a == b


class TestRandomTasks:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_tasks(self, seed):
        task = random_single_input_task(seed)
        task.validate()
        assert task.n_processes == 3
        assert task.is_output_reachable()

    def test_deterministic(self):
        assert random_single_input_task(4) == random_single_input_task(4)

    def test_different_seeds_differ(self):
        tasks = {random_single_input_task(s) for s in range(6)}
        assert len(tasks) > 1

    @pytest.mark.parametrize("seed", range(6))
    def test_sparse_valid(self, seed):
        task = random_sparse_task(seed)
        task.validate()

    def test_single_facet_tasks_canonical(self):
        # single input facet + per-ids induced images => unique preimages
        for seed in range(5):
            assert is_canonical(random_single_input_task(seed))


class TestFacetBoundRegression:
    """``n_facets`` beyond the ``n_values**3`` distinct-facet bound used to
    spin ``while len(facets) < n_facets`` forever; it must now fail fast."""

    def test_unsatisfiable_request_raises(self):
        # previously hung: only 1**3 = 1 distinct facet exists
        with pytest.raises(ValueError, match=r"n_facets=2.*only 1 distinct"):
            random_output_complex(random.Random(0), n_values=1, n_facets=2)

    def test_error_names_both_numbers(self):
        with pytest.raises(ValueError, match=r"n_facets=9.*8 distinct.*n_values=2"):
            random_output_complex(random.Random(0), n_values=2, n_facets=9)

    def test_exact_bound_is_satisfiable(self):
        k = random_output_complex(random.Random(0), n_values=2, n_facets=8)
        assert len(k.facets) == 8

    def test_default_request_is_capped(self):
        # the default (6) exceeds the bound for n_values=1; it caps instead
        # of raising, so callers that never chose a count keep working
        assert len(random_output_complex(random.Random(0), n_values=1).facets) == 1

    def test_task_generators_forward_the_cap(self):
        task = random_single_input_task(0, n_values=1)
        task.validate()
        assert random_sparse_task(0, n_values=1).name == "random-sparse(seed=0)"

    @pytest.mark.parametrize("bad", [0, -3])
    def test_nonpositive_counts_rejected(self, bad):
        with pytest.raises(ValueError):
            random_output_complex(random.Random(0), n_facets=bad)
        with pytest.raises(ValueError):
            random_output_complex(random.Random(0), n_values=bad)


class TestCrossProcessDeterminism:
    """Same seed => identical task, independent of hash randomization.

    Facet pools are canonically sorted before every ``rng.sample`` /
    ``rng.choice`` / ``rng.shuffle``; drawing from a set-derived order
    would tie the generated task to ``PYTHONHASHSEED``.
    """

    SCRIPT = (
        "from repro.tasks.zoo.random_tasks import ("
        "random_single_input_task, random_multi_facet_task, random_sparse_task);"
        "t = {gen}({seed});"
        "print(repr(sorted(t.output_complex.facets, key=repr)));"
        "print(repr(sorted((repr(k), repr(v)) for k, v in t.delta.items())))"
    )

    def _spawn_repr(self, gen: str, seed: int, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        out = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(gen=gen, seed=seed)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout

    @pytest.mark.parametrize(
        "gen",
        ["random_single_input_task", "random_multi_facet_task", "random_sparse_task"],
    )
    def test_identical_under_different_hash_seeds(self, gen):
        a = self._spawn_repr(gen, 7, "0")
        b = self._spawn_repr(gen, 7, "424242")
        assert a == b
