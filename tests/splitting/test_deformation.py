"""Unit tests for the splitting deformation (Section 4.1)."""

import pytest

from repro.splitting.deformation import (
    SplitValue,
    SplittingError,
    split_lap,
    unsplit_value,
    unsplit_vertex,
)
from repro.splitting.lap import local_articulation_points
from repro.tasks.canonical import is_canonical
from repro.tasks.zoo import hourglass_articulation_vertex, path_task
from repro.topology.simplex import Simplex, Vertex


@pytest.fixture
def hourglass_split(hourglass):
    (lap,) = local_articulation_points(hourglass)
    return split_lap(hourglass, lap)


class TestSplitValues:
    def test_unsplit_value(self):
        assert unsplit_value(SplitValue("v", 1)) == "v"
        assert unsplit_value(SplitValue(SplitValue("v", 0), 2)) == "v"
        assert unsplit_value("plain") == "plain"

    def test_unsplit_vertex(self):
        v = Vertex(1, SplitValue("x", 0))
        assert unsplit_vertex(v) == Vertex(1, "x")

    def test_repr(self):
        assert repr(SplitValue("x", 2)) == "'x'/2"


class TestHourglassSplit:
    def test_copies_created(self, hourglass_split):
        assert len(hourglass_split.copies) == 2
        y = hourglass_articulation_vertex()
        assert all(c.color == y.color for c in hourglass_split.copies)
        assert all(unsplit_vertex(c) == y for c in hourglass_split.copies)

    def test_original_vertex_gone(self, hourglass_split):
        y = hourglass_articulation_vertex()
        assert y not in set(hourglass_split.after.output_complex.vertices)

    def test_output_disconnects(self, hourglass_split):
        comps = hourglass_split.after.output_complex.connected_components()
        assert len(comps) == 2

    def test_facet_count_preserved(self, hourglass, hourglass_split):
        # the five triangles survive, with y replaced by its copies
        assert len(hourglass_split.after.output_complex.facets) == len(
            hourglass.output_complex.facets
        )

    def test_still_valid_task(self, hourglass_split):
        hourglass_split.after.validate()

    def test_still_canonical(self, hourglass_split):
        # Claim 1: splitting preserves canonicity
        assert is_canonical(hourglass_split.after)

    def test_lap_eliminated(self, hourglass_split):
        # Lemma 4.1: y is gone and no new LAP w.r.t. σ was created
        assert local_articulation_points(hourglass_split.after) == ()

    def test_project_vertex(self, hourglass_split):
        y = hourglass_articulation_vertex()
        for c in hourglass_split.copies:
            assert hourglass_split.project_vertex(c) == y
        other = Vertex(1, 0)
        assert hourglass_split.project_vertex(other) == other

    def test_edge_images_use_component_copy(self, hourglass, hourglass_split):
        # Δ_y on σ-faces replaces y by the copy of the matching component
        (lap,) = local_articulation_points(hourglass)
        e01 = [e for e in hourglass.input_complex.simplices(dim=1)
               if e.colors() == frozenset({0, 1})][0]
        img = hourglass_split.after.delta(e01)
        copies_present = {
            v for v in img.vertices if isinstance(v.value, SplitValue)
        }
        # the path a0-b1-a1-b0 crosses the waist: both copies appear, each
        # adjacent only to its own component's neighbors
        assert len(copies_present) == 2
        for c in copies_present:
            neighbors = img.link(c).vertices
            comp = lap.components[c.value.branch]
            assert all(nb in comp for nb in neighbors)

    def test_solo_images_pruned_to_consistency(self, hourglass_split):
        # monotonicity restored at the vertex level
        assert hourglass_split.after.delta.is_monotonic()


class TestGuards:
    def test_requires_three_processes(self):
        t = path_task(3)
        fake = None
        with pytest.raises(SplittingError):
            split_lap(t, fake)

    def test_requires_canonical(self, figure3):
        laps = local_articulation_points(figure3)
        # figure3 is not canonical; if it had LAPs, splitting must refuse.
        from repro.splitting.lap import LocalArticulationPoint

        sigma = figure3.input_complex.facets[0]
        dummy = LocalArticulationPoint(
            vertex=figure3.output_complex.vertices[0],
            facet=sigma,
            components=(frozenset(), frozenset()),
        )
        with pytest.raises(SplittingError):
            split_lap(figure3, dummy)


class TestPinwheelSplits:
    def test_first_split_valid(self, pinwheel):
        laps = local_articulation_points(pinwheel)
        step = split_lap(pinwheel, laps[0])
        step.after.validate()
        assert is_canonical(step.after)

    def test_split_reduces_lap_count(self, pinwheel):
        before = len(local_articulation_points(pinwheel))
        step = split_lap(pinwheel, local_articulation_points(pinwheel)[0])
        after = len(local_articulation_points(step.after))
        assert after < before
