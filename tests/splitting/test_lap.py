"""Unit tests for LAP detection."""

import pytest

from repro.splitting.lap import (
    count_laps_per_facet,
    is_link_connected_task,
    local_articulation_points,
)
from repro.tasks.zoo import hourglass_articulation_vertex, identity_task
from repro.topology.simplex import Vertex


class TestDetection:
    def test_hourglass_single_lap(self, hourglass):
        laps = local_articulation_points(hourglass)
        assert len(laps) == 1
        (lap,) = laps
        assert lap.vertex == hourglass_articulation_vertex()
        assert lap.n_components == 2

    def test_hourglass_components_content(self, hourglass):
        (lap,) = local_articulation_points(hourglass)
        sizes = sorted(len(c) for c in lap.components)
        assert sizes == [2, 4]

    def test_component_of(self, hourglass):
        (lap,) = local_articulation_points(hourglass)
        b1 = Vertex(1, 1)
        idx = lap.component_of(b1)
        assert b1 in lap.components[idx]
        with pytest.raises(KeyError):
            lap.component_of(Vertex(0, 0))  # a0 is not in the waist's link

    def test_pinwheel_all_vertices(self, pinwheel):
        laps = local_articulation_points(pinwheel)
        assert len(laps) == 9
        assert all(l.n_components == 2 for l in laps)

    def test_identity_has_none(self, identity3):
        assert local_articulation_points(identity3) == ()

    def test_facet_restriction(self, majority):
        sigma = majority.input_complex.facets[0]
        per_facet = local_articulation_points(majority, facet=sigma)
        assert all(l.facet == sigma for l in per_facet)

    def test_repr(self, hourglass):
        (lap,) = local_articulation_points(hourglass)
        assert "LAP" in repr(lap)


class TestLinkConnectedPredicate:
    def test_identity_link_connected(self, identity3):
        assert is_link_connected_task(identity3)

    def test_hourglass_not(self, hourglass):
        assert not is_link_connected_task(hourglass)

    def test_pinwheel_not(self, pinwheel):
        assert not is_link_connected_task(pinwheel)


class TestCounting:
    def test_counts(self, hourglass):
        counts = count_laps_per_facet(hourglass)
        assert sum(counts.values()) == 1

    def test_counts_identity(self, identity3):
        counts = count_laps_per_facet(identity3)
        assert all(v == 0 for v in counts.values())

    def test_majority_has_laps_per_mixed_facet(self, majority):
        # LAPs are detected on the canonicalized task in the pipeline, but
        # the raw majority task also exhibits them on mixed-input facets
        counts = count_laps_per_facet(majority)
        assert any(v > 0 for v in counts.values())
