"""Unit tests for iterated LAP elimination and the full transform."""

import pytest

from repro.splitting.deformation import unsplit_vertex
from repro.splitting.lap import is_link_connected_task, local_articulation_points
from repro.splitting.pipeline import (
    SplittingDidNotConverge,
    eliminate_laps,
    link_connected_form,
)
from repro.tasks.canonical import canonicalize_if_needed, is_canonical
from repro.tasks.zoo import random_single_input_task
from repro.topology.simplex import Vertex


class TestEliminateLaps:
    def test_hourglass_one_step(self, hourglass):
        result = eliminate_laps(hourglass)
        assert result.n_splits == 1
        assert is_link_connected_task(result.task)

    def test_pinwheel_nine_steps(self, pinwheel):
        result = eliminate_laps(pinwheel)
        assert result.n_splits == 9
        assert is_link_connected_task(result.task)

    def test_no_op_when_clean(self, identity3):
        result = eliminate_laps(identity3)
        assert result.n_splits == 0
        assert result.task is identity3

    def test_intermediate_tasks_canonical(self, pinwheel):
        result = eliminate_laps(pinwheel)
        for step in result.steps:
            assert is_canonical(step.after)

    def test_budget_enforced(self, pinwheel):
        with pytest.raises(SplittingDidNotConverge):
            eliminate_laps(pinwheel, max_steps=2)

    def test_budget_is_per_facet_not_global(self, majority):
        # regression: the docstring/error message used to imply max_steps
        # bounded the whole pipeline, but the counter resets per facet.
        # Canonical majority needs 42 splits total, at most 12 in any one
        # facet — so a "global" budget of 12 would have to fail, while the
        # actual per-facet budget succeeds.
        canon = canonicalize_if_needed(majority).task
        result = eliminate_laps(canon, max_steps=12)
        assert result.n_splits == 42
        assert is_link_connected_task(result.task)

    def test_budget_message_names_facet_and_semantics(self, majority):
        canon = canonicalize_if_needed(majority).task
        with pytest.raises(SplittingDidNotConverge) as excinfo:
            eliminate_laps(canon, max_steps=11)
        message = str(excinfo.value)
        assert "per-facet" in message
        assert "resets for each facet" in message
        assert "<(0:1), (1:1), (2:0)>" in message  # the facet that blew it

    def test_project_vertex_unsplits(self, pinwheel):
        result = eliminate_laps(pinwheel)
        for v in result.task.output_complex.vertices:
            orig = result.project_vertex(v)
            assert orig in set(pinwheel.output_complex.vertices)


class TestLinkConnectedForm:
    def test_hourglass(self, hourglass):
        res = link_connected_form(hourglass)
        assert res.n_splits == 1
        assert len(res.task.output_complex.connected_components()) == 2
        assert res.task.input_complex == hourglass.input_complex

    def test_pinwheel_three_components(self, pinwheel):
        res = link_connected_form(pinwheel)
        assert len(res.task.output_complex.connected_components()) == 3

    def test_pinwheel_components_miss_one_solo_vertex(self, pinwheel):
        # Section 6.2: no component contains copies of all three
        # solo-decision vertices (i, i)
        res = link_connected_form(pinwheel)
        for comp in res.task.output_complex.connected_components():
            diag_colors = {
                res.project_vertex(v).color
                for v in comp
                if res.project_vertex(v).color == res.project_vertex(v).value
            }
            assert len(diag_colors) == 2

    def test_majority_canonicalizes_first(self, majority):
        res = link_connected_form(majority)
        assert res.canonical.task is not majority
        assert is_link_connected_task(res.task)
        assert res.n_splits > 0

    def test_projection_composes_to_original_outputs(self, majority):
        res = link_connected_form(majority)
        originals = set(majority.output_complex.vertices)
        for v in res.task.output_complex.vertices:
            assert res.project_vertex(v) in originals

    def test_two_process_skips_splitting(self):
        from repro.tasks.zoo import path_task

        res = link_connected_form(path_task(3))
        assert res.n_splits == 0

    def test_final_task_valid(self, pinwheel, hourglass, majority):
        for t in (pinwheel, hourglass, majority):
            link_connected_form(t).task.validate()


class TestOrderIndependence:
    """Theorem 4.3 does not fix the elimination order; structural outcomes
    (component counts, facet counts) must not depend on it."""

    def _eliminate_with_order(self, task, reverse: bool):
        from repro.splitting.deformation import split_lap

        current = canonicalize_if_needed(task).task
        splits = 0
        while True:
            laps = local_articulation_points(current)
            if not laps:
                return current, splits
            lap = laps[-1] if reverse else laps[0]
            current = split_lap(current, lap, check=False).after
            splits += 1

    @pytest.mark.parametrize("task_name", ["pinwheel", "hourglass"])
    def test_component_count_invariant(self, task_name, pinwheel, hourglass):
        task = {"pinwheel": pinwheel, "hourglass": hourglass}[task_name]
        fwd, n1 = self._eliminate_with_order(task, reverse=False)
        bwd, n2 = self._eliminate_with_order(task, reverse=True)
        assert n1 == n2
        assert len(fwd.output_complex.connected_components()) == len(
            bwd.output_complex.connected_components()
        )
        assert len(fwd.output_complex.facets) == len(bwd.output_complex.facets)

    @pytest.mark.parametrize("seed", [2, 5, 8])
    def test_random_tasks_invariant(self, seed):
        task = random_single_input_task(seed, n_facets=7)
        fwd, n1 = self._eliminate_with_order(task, reverse=False)
        bwd, n2 = self._eliminate_with_order(task, reverse=True)
        assert n1 == n2
        assert len(fwd.output_complex.connected_components()) == len(
            bwd.output_complex.connected_components()
        )
