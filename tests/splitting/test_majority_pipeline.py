"""The majority-consensus pipeline in detail (Figure 1's full story).

The paper's Section 5.3 sketch: canonicalize, split, then the solo output
of P0 (deciding 0) ends up separated from the outputs available when the
other two processes start with 1.  These tests trace that structure
through the actual pipeline objects.
"""

import pytest

from repro.solvability import corollary_5_5
from repro.splitting import (
    count_laps_per_facet,
    link_connected_form,
    local_articulation_points,
)
from repro.tasks.canonical import canonicalize, split_product_vertex
from repro.topology.simplex import Simplex, Vertex, chrom


@pytest.fixture(scope="module")
def pipeline(majority):
    return link_connected_form(majority)


class TestCanonicalMajority:
    def test_product_facet_count(self, majority):
        star = canonicalize(majority).task
        expected = sum(
            len(majority.delta(s).facets) for s in majority.input_complex.facets
        )
        assert len(star.output_complex.facets) == expected == 32

    def test_laps_concentrate_on_mixed_facets(self, majority):
        star = canonicalize(majority).task
        counts = count_laps_per_facet(star)
        for facet, count in counts.items():
            values = {v.value for v in facet.vertices}
            if len(values) == 1:
                assert count == 0, f"uniform facet {facet!r} must be LAP-free"

    def test_mixed_facets_have_laps(self, majority):
        star = canonicalize(majority).task
        counts = count_laps_per_facet(star)
        mixed = [
            f for f in counts if len({v.value for v in f.vertices}) == 2
        ]
        assert mixed
        assert any(counts[f] > 0 for f in mixed)


class TestSplitMajority:
    def test_split_count(self, pipeline):
        assert pipeline.n_splits == 42

    def test_projection_lands_in_original(self, pipeline, majority):
        originals = set(majority.output_complex.vertices)
        for v in pipeline.task.output_complex.vertices:
            assert pipeline.project_vertex(v) in originals

    def test_cor55_fires_on_a_mixed_facet(self, pipeline):
        witness = corollary_5_5(pipeline.task)
        assert witness is not None
        values = {split_product_vertex(v)[0].value if isinstance(v.value, tuple)
                  else v.value for v in witness.facet.vertices}
        assert len(values) == 2, "the obstruction lives on a mixed-input facet"

    def test_paper_narrative_facet(self, pipeline, majority):
        """For the input (P0=0, P1=1, P2=1): P0's solo output and the pair
        (P1, P2)'s outputs are separated in the split edge images."""
        task = pipeline.task
        sigma = next(
            f
            for f in task.input_complex.facets
            if [v.value for v in f.sorted_vertices()] == [0, 1, 1]
        )
        x0 = Simplex([sigma.vertex_of_color(0)])
        # P0's solo decisions all project to output value 0 in the original
        for v in task.delta(x0).vertices:
            original = pipeline.project_vertex(v)
            assert original.value == 0

    def test_no_laps_remain(self, pipeline):
        assert local_articulation_points(pipeline.task) == ()
