"""Unit tests for the analysis layer."""

import pytest

from repro.analysis import Census, TaskReport, analyze_task, run_census, sparse_census
from repro.solvability import Status
from repro.tasks.zoo import identity_task, path_task


class TestTaskReport:
    def test_hourglass(self, hourglass):
        report = analyze_task(hourglass)
        assert report.solvable is False
        assert report.lap_count == 1
        assert report.n_splits == 1
        assert report.o_prime_components == 2
        assert report.canonical is True
        text = str(report)
        assert "unsolvable" in text
        assert "corollary" in text

    def test_pinwheel(self, pinwheel):
        report = analyze_task(pinwheel)
        assert report.lap_count == 9
        assert report.o_prime_components == 3
        assert report.solvable is False

    def test_identity(self, identity3):
        report = analyze_task(identity3)
        assert report.solvable is True
        assert report.lap_count == 0
        assert "Ch^0" in str(report)

    def test_two_process(self):
        report = analyze_task(path_task(3))
        assert report.solvable is True
        assert report.n_splits == 0

    def test_lines_structure(self, identity3):
        report = analyze_task(identity3)
        assert len(report.lines()) >= 7


class TestCensus:
    def test_random_population(self):
        census = run_census(range(8))
        assert census.population == 8
        assert census.solvable + census.unsolvable + census.unknown == 8
        assert sum(census.certificates.values()) == 8

    def test_sparse_population(self):
        census = sparse_census(range(5))
        assert census.population == 5

    def test_rows(self):
        census = run_census(range(3))
        (row,) = census.rows()
        assert row["population"] == 3

    def test_zoo_census_certificates(self, hourglass, pinwheel, identity3):
        from repro.solvability import decide_solvability

        census = Census()
        for task in (hourglass, pinwheel, identity3):
            census.add(decide_solvability(task, max_rounds=1))
        assert census.unsolvable == 2
        assert census.solvable == 1
        assert census.certificates["witness-map"] == 1
