"""Unit tests for the command-line interface.

Exit codes follow one convention across every subcommand (documented in
the ``python -m repro`` epilog): 0 success / definitive answer, 1 failure
(violations, synthesis failure, check findings, invalid input), 2
inconclusive (UNKNOWN) or usage error.  The failure paths are pinned per
subcommand below; ``tests/check/test_cli_check.py`` covers ``check``'s.
"""

import json

import pytest

from repro.__main__ import ZOO, build_parser, main


class TestList:
    def test_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hourglass" in out
        assert "pinwheel" in out

    def test_zoo_constructors_all_valid(self):
        for name, make in ZOO.items():
            task = make()
            task.validate()


class TestAnalyze:
    def test_hourglass(self, capsys):
        assert main(["analyze", "hourglass"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out
        assert "corollary" in out

    def test_identity(self, capsys):
        assert main(["analyze", "identity"]) == 0
        assert "solvable" in capsys.readouterr().out

    def test_unknown_task(self):
        with pytest.raises(SystemExit):
            main(["analyze", "martian-task"])

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        main(["analyze", "hourglass", "--json", str(out)])
        payload = json.loads(out.read_text())
        assert payload["verdict"] == "unsolvable"
        assert payload["splits"] == 1

    def test_dot_export(self, tmp_path):
        prefix = str(tmp_path / "hg")
        main(["analyze", "hourglass", "--dot", prefix])
        assert (tmp_path / "hg-output.dot").exists()
        assert (tmp_path / "hg-split.dot").exists()

    def test_save_split_roundtrip(self, tmp_path, capsys):
        from repro.io import load_task

        out = tmp_path / "split.json"
        main(["analyze", "pinwheel", "--save-split", str(out)])
        split = load_task(str(out))
        assert len(split.output_complex.connected_components()) == 3

    def test_analyze_json_file(self, tmp_path, capsys):
        from repro.io import save_task
        from repro.tasks.zoo import hourglass_task

        path = tmp_path / "task.json"
        save_task(hourglass_task(), str(path))
        assert main(["analyze", str(path)]) == 0

    def test_unknown_verdict_exits_2(self, capsys):
        assert main(["analyze", "approx-agreement", "--max-rounds", "0"]) == 2

    def test_trace_export_is_schema_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "trace.json"
        assert main(["analyze", "hourglass", "--trace", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        assert payload["meta"]["command"] == "analyze hourglass"
        names = {s["name"] for s in payload["spans"]}
        assert "decide" in names


class TestDecide:
    def test_unsolvable_task(self, capsys):
        assert main(["decide", "hourglass"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out
        assert "corollary" in out

    def test_solvable_task(self, capsys):
        assert main(["decide", "identity"]) == 0
        out = capsys.readouterr().out
        assert "solvable" in out
        assert "witness map" in out

    def test_unknown_verdict_exits_2(self, capsys):
        assert main(["decide", "approx-agreement", "--max-rounds", "0"]) == 2
        assert "budgets exhausted" in capsys.readouterr().out

    def test_json_export_is_the_service_verdict_schema(self, tmp_path, capsys):
        out = tmp_path / "verdict.json"
        assert main(["decide", "consensus", "--json", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-verdict/1"
        assert payload["status"] == "unsolvable"
        assert payload["certificate"]["kind"] == "obstruction"

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit, match="unknown task"):
            main(["decide", "martian-task"])

    def test_trace_export_is_schema_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "trace.json"
        assert main(["decide", "majority", "--trace", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        assert payload["meta"]["command"] == "decide majority"
        assert payload["spans"][0]["name"] == "decide"


class TestTrace:
    def _write_trace(self, tmp_path, name="trace.json"):
        out = tmp_path / name
        main(["decide", "hourglass", "--trace", str(out)])
        return out

    def test_summary_renders_valid_trace(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "decide" in out and "transform" in out

    def test_validate_accepts_valid_traces(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["trace", "validate", str(path), str(path)]) == 0

    def test_validate_rejects_corrupt_trace(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = "wrong/0"
        path.write_text(json.dumps(payload))
        assert main(["trace", "validate", str(path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_one_bad_file_fails_the_batch(self, tmp_path, capsys):
        good = self._write_trace(tmp_path, "good.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["trace", "validate", str(good), str(bad)]) == 1

    def test_summary_rejects_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_summary_top_sort_and_min_ms_filters(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert (
            main(
                [
                    "trace",
                    "summary",
                    str(path),
                    "--top",
                    "3",
                    "--sort",
                    "count",
                    "--min-ms",
                    "0.001",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "top spans by name (sorted by count)" in out
        assert "calls" in out

    def test_flame_emits_folded_stacks(self, tmp_path, capsys):
        import re

        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "flame", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        folded = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")
        for line in lines:
            assert folded.match(line), line
        assert any(line.startswith("decide;") for line in lines)

    def test_flame_writes_out_file(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        out = tmp_path / "folded.txt"
        assert (
            main(
                ["trace", "flame", str(path), "--metric", "cpu", "--out", str(out)]
            )
            == 0
        )
        assert out.read_text().strip()

    def test_export_chrome_trace(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        out = tmp_path / "chrome.json"
        assert main(["trace", "export", str(path), "--chrome", "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_export_requires_a_format_flag(self, tmp_path):
        path = self._write_trace(tmp_path)
        with pytest.raises(SystemExit, match="--chrome"):
            main(["trace", "export", str(path)])


class TestSynthesize:
    def test_identity(self, capsys):
        assert main(["synthesize", "identity", "--runs", "2", "--facets-only"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out
        assert "all executions legal" in out

    def test_figure7_mode(self, capsys):
        assert main(
            ["synthesize", "identity", "--figure7", "--runs", "2", "--facets-only"]
        ) == 0
        assert "figure-7" in capsys.readouterr().out

    def test_unsolvable_fails(self, capsys):
        assert main(["synthesize", "consensus", "--runs", "1"]) == 1
        assert "synthesis failed" in capsys.readouterr().err

    def test_programming_errors_propagate(self, capsys, monkeypatch):
        # regression: cmd_synthesize used to wrap the whole attempt in a
        # bare `except Exception`, so a TypeError from a bug printed
        # "synthesis failed" and exited 1 — indistinguishable from an
        # unsolvable task.  Only the documented failure modes
        # (SynthesisError, SearchBudgetExceeded, PreflightError) may be
        # reported that way; bugs must crash with their traceback.
        from repro.service import execution as service_execution

        def broken(*args, **kwargs):
            raise TypeError("a bug, not a failure mode")

        monkeypatch.setattr(
            service_execution, "synthesize_protocol", broken
        )
        with pytest.raises(TypeError, match="a bug, not a failure mode"):
            main(["synthesize", "identity", "--runs", "1"])

    def test_expected_failure_exits_one_with_message(self, capsys, monkeypatch):
        from repro.runtime import SynthesisError
        from repro.service import execution as service_execution

        def refuses(*args, **kwargs):
            raise SynthesisError("no witness map within budget")

        monkeypatch.setattr(
            service_execution, "synthesize_protocol", refuses
        )
        assert main(["synthesize", "identity", "--runs", "1"]) == 1
        err = capsys.readouterr().err
        assert "synthesis failed: no witness map within budget" in err

    def test_trace_export_is_schema_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "synthesize",
                    "identity",
                    "--runs",
                    "2",
                    "--facets-only",
                    "--trace",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        assert payload["meta"]["command"] == "synthesize identity"


class TestServeBench:
    def test_emits_a_valid_report_and_passes_its_gates(self, tmp_path, capsys):
        from repro.perf import validate_report

        out = tmp_path / "BENCH_service.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "8",
                    "--concurrency", "2",
                    "--pool-size", "1",
                    "--no-persist",
                    "--min-hit-rate", "0.5",
                    "--out", str(out),
                ]
            )
            == 0
        )
        assert "hit rate" in capsys.readouterr().out
        assert validate_report(json.loads(out.read_text())) == []

    def test_failed_gate_exits_one(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "6",
                    "--concurrency", "2",
                    "--pool-size", "1",
                    "--no-persist",
                    "--max-p99-ms", "0.0",
                ]
            )
            == 1
        )
        assert "GATE" in capsys.readouterr().err


class TestCensus:
    def test_runs(self, capsys):
        assert main(["census", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "population: 4" in out

    def test_sparse(self, capsys):
        assert main(["census", "--seeds", "3", "--sparse"]) == 0

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be at least 1"):
            main(["census", "--seeds", "2", "--workers", "0"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be at least 1"):
            main(["census", "--seeds", "2", "--workers", "-4"])

    def test_negative_chunksize_rejected(self):
        with pytest.raises(SystemExit, match="--chunksize must be at least 1"):
            main(["census", "--seeds", "2", "--chunksize", "-1"])

    def test_negative_seeds_rejected(self):
        with pytest.raises(SystemExit, match="--seeds must be non-negative"):
            main(["census", "--seeds", "-5"])

    def test_trace_export_aggregates_workers(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "census-trace.json"
        code = main(
            [
                "census",
                "--seeds",
                "4",
                "--workers",
                "2",
                "--chunksize",
                "2",
                "--trace",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        assert len(payload["workers"]) == 2  # one snapshot per chunk
        assert payload["aggregate"]["counters"]["census.tasks"] == 4.0


class TestObs:
    def _store_with_runs(self, tmp_path, count=2):
        """Record ``count`` decide runs into a store; returns its path.

        Every run gets a fresh persistent-cache directory: the recorded
        counters/cache rates must be run-over-run identical for the diff
        tests, which a warm subdivision-tower store would break.
        """
        from repro.topology import diskstore

        store = tmp_path / "telemetry.jsonl"
        for i in range(count):
            with diskstore.store_at(str(tmp_path / f"towers-{i}")):
                main(["decide", "hourglass", "--store", str(store)])
        return store

    def test_traced_run_appends_a_valid_record(self, tmp_path, capsys):
        from repro.obs import load_store

        store = self._store_with_runs(tmp_path, count=2)
        out = capsys.readouterr().out
        assert "recorded run" in out
        records, problems = load_store(str(store))
        assert problems == []
        assert len(records) == 2
        assert all(r["command"] == "decide" for r in records)
        assert all(r["task"] == "hourglass" for r in records)
        assert records[0]["argv"][0] == "decide"

    def test_trace_flag_also_records_via_env_store(self, tmp_path, capsys, monkeypatch):
        from repro.obs import load_store

        store = tmp_path / "env-store.jsonl"
        monkeypatch.setenv("REPRO_TELEMETRY", str(store))
        main(["decide", "hourglass", "--trace", str(tmp_path / "t.json")])
        records, problems = load_store(str(store))
        assert problems == [] and len(records) == 1

    def test_validate_and_list(self, tmp_path, capsys):
        store = self._store_with_runs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "validate", "--store", str(store)]) == 0
        assert "2 valid repro-run/1" in capsys.readouterr().out
        assert main(["obs", "list", "--store", str(store)]) == 0
        assert "decide" in capsys.readouterr().out

    def test_validate_fails_on_empty_store(self, tmp_path, capsys):
        missing = tmp_path / "none.jsonl"
        assert main(["obs", "validate", "--store", str(missing)]) == 1
        assert "no runs recorded" in capsys.readouterr().err

    def test_validate_fails_on_corrupt_line(self, tmp_path, capsys):
        store = self._store_with_runs(tmp_path, count=1)
        with open(store, "a", encoding="utf-8") as fh:
            fh.write("{broken\n")
        assert main(["obs", "validate", "--store", str(store)]) == 1
        assert "not JSON" in capsys.readouterr().err

    def test_trend_renders_history(self, tmp_path, capsys):
        store = self._store_with_runs(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "obs",
                "trend",
                "--store",
                str(store),
                "--metric",
                "wall",
                "--command",
                "decide",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 run(s):" in out
        assert "wall_seconds" in out

    def test_diff_self_vs_self_exits_zero(self, tmp_path, capsys):
        store = self._store_with_runs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", "-2", "-2", "--store", str(store)]) == 0
        assert "— clean" in capsys.readouterr().out

    def test_diff_injected_regression_exits_nonzero(self, tmp_path, capsys):
        # acceptance criterion: double one span's wall time in the newest
        # record and the sentinel must gate
        store = self._store_with_runs(tmp_path)
        lines = store.read_text().splitlines()
        doctored = json.loads(lines[-1])
        for entry in doctored["spans"].values():
            entry["wall_seconds"] *= 2.0
        doctored["spans"]["decide"]["wall_seconds"] += 1.0  # clear the floor
        lines[-1] = json.dumps(doctored, sort_keys=True)
        store.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        code = main(
            ["obs", "diff", "-2", "-1", "--store", str(store), "--min-seconds", "0"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_diff_baseline_file_vs_latest(self, tmp_path, capsys):
        store = self._store_with_runs(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(store.read_text().splitlines()[0])
        capsys.readouterr()
        code = main(
            ["obs", "diff", "--baseline", str(baseline), "--store", str(store)]
        )
        assert code == 0
        assert "baseline:" in capsys.readouterr().out

    def test_diff_baseline_matches_same_task_not_just_command(self, tmp_path, capsys):
        # a later decide run of a *different* task must not become the
        # comparison target — that would chart apples against oranges
        store = tmp_path / "telemetry.jsonl"
        main(["decide", "hourglass", "--store", str(store)])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(store.read_text().splitlines()[0])
        main(["decide", "identity", "--store", str(store)])
        capsys.readouterr()
        assert (
            main(["obs", "diff", "--baseline", str(baseline), "--store", str(store)])
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("hourglass") == 2  # both sides are the hourglass run

    def test_diff_needs_two_refs_without_baseline(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=1)
        with pytest.raises(SystemExit, match="two run references"):
            main(["obs", "diff", "-1", "--store", str(store)])

    def test_diff_unknown_ref_rejected(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=1)
        with pytest.raises(SystemExit, match="no run with id prefix"):
            main(["obs", "diff", "zzz", "yyy", "--store", str(store)])

    def test_ingest_bench_report(self, tmp_path, capsys):
        store = tmp_path / "telemetry.jsonl"
        code = main(
            ["obs", "ingest", "benchmarks/BENCH_perf_core.json", "--store", str(store)]
        )
        assert code == 0
        assert "ingested" in capsys.readouterr().out
        assert main(["obs", "validate", "--store", str(store)]) == 0

    def test_ingest_garbage_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        store = tmp_path / "telemetry.jsonl"
        assert main(["obs", "ingest", str(bad), "--store", str(store)]) == 1

    def test_ingest_needs_files(self, tmp_path):
        with pytest.raises(SystemExit, match="needs one or more"):
            main(["obs", "ingest", "--store", str(tmp_path / "t.jsonl")])


CONFORM_FAST = ["--random-runs", "1", "--exhaustive", "4", "--no-adversarial"]


class TestConform:
    def test_solvable_task_passes(self, capsys):
        assert main(["conform", "--tasks", "identity"] + CONFORM_FAST) == 0
        out = capsys.readouterr().out
        assert "solvable" in out
        assert "0 violations" in out

    def test_nothing_to_conform_rejected(self):
        with pytest.raises(SystemExit, match="nothing to conform"):
            main(["conform"])

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be at least 1"):
            main(["conform", "--tasks", "identity", "--workers", "0"])

    def test_raising_task_is_reported_not_fatal(self, capsys, monkeypatch):
        # regression: an exception inside one task's conformance used to
        # propagate out of pool.map and abort the whole campaign; it must
        # instead surface as a status="error" row and exit code 1.
        import repro.runtime.conformance as conformance

        def _boom(task, config=None, name=None):
            raise RuntimeError("injected task failure")

        monkeypatch.setattr(conformance, "conform_task", _boom)
        code = main(
            ["conform", "--tasks", "identity,constant", "--workers", "1"]
            + CONFORM_FAST
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("error: RuntimeError: injected task failure") == 2
        assert "2 tasks" in out  # both rows survived the failures

    def test_raising_pool_worker_is_reported_not_fatal(self, capsys, monkeypatch):
        # same, through a real multiprocessing pool (fork inherits the patch)
        import repro.runtime.conformance as conformance

        def _boom(task, config=None, name=None):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(conformance, "conform_task", _boom)
        code = main(
            [
                "conform",
                "--tasks",
                "identity,constant",
                "--workers",
                "2",
            ]
            + CONFORM_FAST
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("error: RuntimeError: injected worker failure") == 2

    def test_trace_export_is_schema_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "conform-trace.json"
        code = main(
            ["conform", "--tasks", "identity", "--trace", str(out)]
            + CONFORM_FAST
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        names = [s["name"] for s in payload["spans"]]
        assert "conform.task" in names


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-command"])
        assert excinfo.value.code == 2

    def test_epilog_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
