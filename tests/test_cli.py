"""Unit tests for the command-line interface."""

import json

import pytest

from repro.__main__ import ZOO, build_parser, main


class TestList:
    def test_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hourglass" in out
        assert "pinwheel" in out

    def test_zoo_constructors_all_valid(self):
        for name, make in ZOO.items():
            task = make()
            task.validate()


class TestAnalyze:
    def test_hourglass(self, capsys):
        assert main(["analyze", "hourglass"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out
        assert "corollary" in out

    def test_identity(self, capsys):
        assert main(["analyze", "identity"]) == 0
        assert "solvable" in capsys.readouterr().out

    def test_unknown_task(self):
        with pytest.raises(SystemExit):
            main(["analyze", "martian-task"])

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        main(["analyze", "hourglass", "--json", str(out)])
        payload = json.loads(out.read_text())
        assert payload["verdict"] == "unsolvable"
        assert payload["splits"] == 1

    def test_dot_export(self, tmp_path):
        prefix = str(tmp_path / "hg")
        main(["analyze", "hourglass", "--dot", prefix])
        assert (tmp_path / "hg-output.dot").exists()
        assert (tmp_path / "hg-split.dot").exists()

    def test_save_split_roundtrip(self, tmp_path, capsys):
        from repro.io import load_task

        out = tmp_path / "split.json"
        main(["analyze", "pinwheel", "--save-split", str(out)])
        split = load_task(str(out))
        assert len(split.output_complex.connected_components()) == 3

    def test_analyze_json_file(self, tmp_path, capsys):
        from repro.io import save_task
        from repro.tasks.zoo import hourglass_task

        path = tmp_path / "task.json"
        save_task(hourglass_task(), str(path))
        assert main(["analyze", str(path)]) == 0


class TestSynthesize:
    def test_identity(self, capsys):
        assert main(["synthesize", "identity", "--runs", "2", "--facets-only"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out
        assert "all executions legal" in out

    def test_figure7_mode(self, capsys):
        assert main(
            ["synthesize", "identity", "--figure7", "--runs", "2", "--facets-only"]
        ) == 0
        assert "figure-7" in capsys.readouterr().out

    def test_unsolvable_fails(self, capsys):
        assert main(["synthesize", "consensus", "--runs", "1"]) == 1


class TestCensus:
    def test_runs(self, capsys):
        assert main(["census", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "population: 4" in out

    def test_sparse(self, capsys):
        assert main(["census", "--seeds", "3", "--sparse"]) == 0

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be at least 1"):
            main(["census", "--seeds", "2", "--workers", "0"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be at least 1"):
            main(["census", "--seeds", "2", "--workers", "-4"])

    def test_negative_chunksize_rejected(self):
        with pytest.raises(SystemExit, match="--chunksize must be at least 1"):
            main(["census", "--seeds", "2", "--chunksize", "-1"])

    def test_negative_seeds_rejected(self):
        with pytest.raises(SystemExit, match="--seeds must be non-negative"):
            main(["census", "--seeds", "-5"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
