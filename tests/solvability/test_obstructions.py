"""Unit tests for the impossibility obstructions."""

import pytest

from repro.solvability.obstructions import (
    corollary_5_5,
    corollary_5_6,
    homological_obstruction,
    two_process_solvable,
)
from repro.splitting.pipeline import link_connected_form
from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    identity_task,
    inputless_set_agreement_task,
    loop_agreement_task,
    path_task,
    triangle_loop,
    two_process_fork_task,
)


class TestCorollary55:
    def test_consensus_detected(self, consensus3):
        w = corollary_5_5(consensus3)
        assert w is not None
        assert w.kind == "corollary-5.5"

    def test_hourglass_after_split(self, hourglass):
        res = link_connected_form(hourglass)
        assert corollary_5_5(res.task) is not None

    def test_hourglass_before_split_detected_via_crossing(self, hourglass):
        # pre-split, every path between the solo outputs of P0 and P1
        # crosses the waist: the crossing-aware check already fires
        assert corollary_5_5(hourglass) is not None

    def test_majority_after_transform(self, majority):
        res = link_connected_form(majority)
        w = corollary_5_5(res.task)
        assert w is not None

    def test_identity_clean(self, identity3):
        assert corollary_5_5(identity3) is None

    def test_constant_clean(self):
        assert corollary_5_5(constant_task(3)) is None

    def test_2set_agreement_not_detected(self):
        # 2-set agreement is unsolvable but NOT by articulation points
        t = inputless_set_agreement_task(3, 2)
        res = link_connected_form(t)
        assert corollary_5_5(res.task) is None


class TestCorollary56:
    def test_requires_single_facet(self, majority):
        assert corollary_5_6(majority) is None  # multi-facet: no conclusion

    def test_identity_no_witness(self):
        from repro.tasks.zoo import random_single_input_task

        t = random_single_input_task(1)
        # solvable random task: must not produce a witness
        assert corollary_5_6(t) is None

    def test_hourglass_not_detected(self, hourglass):
        # the small lobe's loop a0-b1-a1-c1 stays inside one link component
        # of the waist — a cycle that does NOT cross the LAP — so 5.6 gives
        # no conclusion on the hourglass (5.5 is the right tool there)
        assert corollary_5_6(hourglass) is None

    def test_pinwheel_pre_split(self, pinwheel):
        # every 4-cycle of an input edge crosses a LAP: the split graph of
        # Δ(Skel¹ I) is a forest
        w = corollary_5_6(pinwheel)
        assert w is not None

    def test_2set_agreement_clean(self):
        # the 4-cycles of 2-set agreement do not cross any LAP (there are
        # none), so the corollary must not fire
        t = inputless_set_agreement_task(3, 2)
        assert corollary_5_6(t) is None


class TestHomological:
    def test_2set_agreement_detected(self):
        t = inputless_set_agreement_task(3, 2)
        w = homological_obstruction(t)
        assert w is not None
        assert w.kind == "homological"

    def test_hollow_loop_agreement_detected(self):
        t = loop_agreement_task(triangle_loop(False))
        assert homological_obstruction(t) is not None

    def test_filled_loop_agreement_clean(self):
        t = loop_agreement_task(triangle_loop(True))
        assert homological_obstruction(t) is None

    def test_identity_clean(self, identity3):
        assert homological_obstruction(identity3) is None

    def test_split_pinwheel_detected_by_connectivity(self, pinwheel):
        res = link_connected_form(pinwheel)
        w = homological_obstruction(res.task)
        assert w is not None
        assert "path-connected" in w.detail

    def test_witness_repr(self):
        t = inputless_set_agreement_task(3, 2)
        w = homological_obstruction(t)
        assert "homological" in repr(w)


class TestEmptyImage:
    def test_clean_on_valid_tasks(self, identity3, hourglass):
        from repro.solvability import empty_image_obstruction

        assert empty_image_obstruction(identity3) is None
        assert empty_image_obstruction(hourglass) is None

    def test_fires_on_non_strict_task(self):
        from repro.solvability import empty_image_obstruction
        from repro.tasks.task import Task
        from repro.tasks.zoo import identity_task
        from repro.topology.carrier import CarrierMap
        from repro.topology.complexes import SimplicialComplex

        base = identity_task(3)
        images = {s: base.delta(s) for s in base.input_complex.simplices()}
        victim = base.input_complex.simplices(dim=0)[0]
        images[victim] = SimplicialComplex.empty()
        crippled = Task(
            base.input_complex,
            base.output_complex,
            CarrierMap(base.input_complex, base.output_complex, images, check=False),
            check=False,
        )
        w = empty_image_obstruction(crippled)
        assert w is not None and w.kind == "empty-image"


class TestTwoProcess:
    def test_path_solvable(self):
        assert two_process_solvable(path_task(3))
        assert two_process_solvable(path_task(7))

    def test_fork_unsolvable(self):
        assert not two_process_solvable(two_process_fork_task())

    def test_consensus_unsolvable(self):
        assert not two_process_solvable(consensus_task(2))

    def test_identity_solvable(self):
        assert two_process_solvable(identity_task(2))

    def test_dimension_checked(self, identity3):
        with pytest.raises(ValueError):
            two_process_solvable(identity3)

    def test_multi_facet_consistency(self):
        # two-process consensus restricted to mixed inputs only: the single
        # shared component constraint propagates around the input complex
        t = consensus_task(2, values=(0, 1, 2))
        assert not two_process_solvable(t)


class TestSoundnessOnSolvables:
    """No obstruction may ever fire on a task with a verified witness map."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_solvable_tasks_clean(self, seed):
        from repro.solvability import Status, decide_solvability
        from repro.tasks.zoo import random_single_input_task

        task = random_single_input_task(seed)
        verdict = decide_solvability(task, max_rounds=1, run_obstructions=False)
        if verdict.status is Status.SOLVABLE:
            res = link_connected_form(task)
            assert corollary_5_5(res.task) is None
            assert homological_obstruction(res.task) is None
            assert corollary_5_6(res.task) is None
