"""Loop agreement solvability: the contractibility obstruction in action.

Loop agreement tasks are the engine of the undecidability results the
paper discusses (Section 1.3); their solvability is equivalent to the
contractibility of the loop.  These tests exercise the homological
necessary condition on the three canonical cases: a filled triangle
(contractible: solvable), an annulus loop (infinite order in H1:
unsolvable), and the projective-plane loop (2-torsion: unsolvable — the
case that *needs* integer homology rather than rational rank).
"""

import pytest

from repro.solvability import Status, decide_solvability, homological_obstruction
from repro.tasks.zoo import (
    annulus_loop,
    loop_agreement_task,
    projective_plane_loop,
    triangle_loop,
)
from repro.topology.homology import (
    ChainBasis,
    edge_chain,
    homology_torsion,
    is_null_homologous,
)


class TestLoopClasses:
    def test_triangle_filled_contractible(self):
        loop = triangle_loop(True)
        basis = ChainBasis.of(loop.complex)
        z = edge_chain(basis, loop.full_cycle())
        assert is_null_homologous(loop.complex, z, over="Z")

    def test_annulus_loop_infinite_order(self):
        loop = annulus_loop()
        basis = ChainBasis.of(loop.complex)
        z = edge_chain(basis, loop.full_cycle())
        assert not is_null_homologous(loop.complex, z, over="Z")
        # no multiple bounds: infinite order
        for k in (2, 3):
            assert not is_null_homologous(loop.complex, k * z, over="Z")

    def test_projective_loop_is_2_torsion(self):
        loop = projective_plane_loop()
        assert homology_torsion(loop.complex, 1) == (2,)
        basis = ChainBasis.of(loop.complex)
        z = edge_chain(basis, loop.full_cycle())
        assert not is_null_homologous(loop.complex, z, over="Z")
        assert is_null_homologous(loop.complex, 2 * z, over="Z")


class TestVerdicts:
    def test_filled_solvable(self):
        v = decide_solvability(loop_agreement_task(triangle_loop(True)), max_rounds=1)
        assert v.status is Status.SOLVABLE

    def test_hollow_unsolvable(self):
        v = decide_solvability(loop_agreement_task(triangle_loop(False)), max_rounds=0)
        assert v.status is Status.UNSOLVABLE
        assert v.obstruction.kind == "homological"

    def test_projective_unsolvable(self):
        task = loop_agreement_task(projective_plane_loop())
        v = decide_solvability(task, max_rounds=0)
        assert v.status is Status.UNSOLVABLE
        assert v.obstruction.kind == "homological"

    @pytest.mark.slow
    def test_annulus_unsolvable(self):
        task = loop_agreement_task(annulus_loop())
        v = decide_solvability(task, max_rounds=0)
        assert v.status is Status.UNSOLVABLE


class TestObstructionDirect:
    def test_projective_homological_fires(self):
        task = loop_agreement_task(projective_plane_loop())
        w = homological_obstruction(task)
        assert w is not None
        assert "over Z" in w.detail
