"""Unit tests for the simplicial-map search."""

import pytest

from repro.solvability.map_search import (
    SearchBudgetExceeded,
    SearchStats,
    find_map,
    prepare_problem,
    search_map,
    verify_map,
)
from repro.tasks.zoo import (
    consensus_task,
    hourglass_task,
    identity_task,
    path_task,
    set_agreement_task,
)
from repro.topology.subdivision import (
    iterated_barycentric_subdivision,
    iterated_chromatic_subdivision,
)


def _sub(task, r, engine="chromatic"):
    if engine == "chromatic":
        return iterated_chromatic_subdivision(task.input_complex, r)
    return iterated_barycentric_subdivision(task.input_complex, r)


class TestBasicSearch:
    def test_identity_found_at_zero(self, identity3):
        sub = _sub(identity3, 0)
        f = find_map(sub, identity3.delta, chromatic=True)
        assert f is not None
        assert verify_map(sub, identity3.delta, f, chromatic=True)

    def test_consensus_has_no_map_at_any_small_depth(self, consensus3):
        for r in range(2):
            sub = _sub(consensus3, r)
            assert find_map(sub, consensus3.delta, chromatic=False) is None

    def test_hourglass_colorless_map_exists(self, hourglass):
        # the colorless-ACT condition holds for the hourglass (Section 6.1):
        # a continuous |I| -> |O| map carried by Δ exists, witnessed by a
        # simplicial map from the 2-fold barycentric subdivision
        sub = _sub(hourglass, 2, "barycentric")
        found = find_map(sub, hourglass.delta, chromatic=False)
        assert found is not None
        assert verify_map(sub, hourglass.delta, found, chromatic=False)

    def test_hourglass_no_chromatic_map_at_low_depth(self, hourglass):
        # unsolvability implies no chromatic witness at any depth; check
        # small depths explicitly
        for r in range(2):
            sub = _sub(hourglass, r)
            assert find_map(sub, hourglass.delta, chromatic=True) is None

    def test_path_task_depth(self):
        t = path_task(3)
        assert find_map(_sub(t, 0), t.delta) is None
        assert find_map(_sub(t, 1), t.delta) is not None

    def test_barycentric_engine(self):
        t = path_task(3)
        assert find_map(_sub(t, 1, "barycentric"), t.delta) is None
        f = find_map(_sub(t, 2, "barycentric"), t.delta)
        assert f is not None
        assert verify_map(_sub(t, 2, "barycentric"), t.delta, f)


class TestProblemPreparation:
    def test_domains_respect_colors(self, identity3):
        sub = _sub(identity3, 1)
        problem = prepare_problem(sub, identity3.delta, chromatic=True)
        for v in problem.variables:
            for w in problem.domains[v]:
                assert w.color == v.color

    def test_agnostic_domains_larger(self, identity3):
        sub = _sub(identity3, 1)
        chrom_p = prepare_problem(sub, identity3.delta, chromatic=True)
        agn_p = prepare_problem(sub, identity3.delta, chromatic=False)
        assert all(
            len(agn_p.domains[v]) >= len(chrom_p.domains[v])
            for v in chrom_p.variables
        )

    def test_wrong_base_rejected(self, identity3):
        other = set_agreement_task(3, 2)  # different input complex (3 values)
        sub = _sub(identity3, 0)
        with pytest.raises(ValueError):
            prepare_problem(sub, other.delta, chromatic=False)

    def test_variables_follow_adjacency(self, identity3):
        # each variable (after the first) shares a facet with an earlier one
        # when the subdivision is connected, so constraints fire early
        sub = _sub(identity3, 1)
        problem = prepare_problem(sub, identity3.delta, chromatic=False)
        neighbors = {v: set() for v in sub.complex.vertices}
        for f in sub.complex.facets:
            for v in f.vertices:
                neighbors[v].update(w for w in f.vertices if w != v)
        seen = {problem.variables[0]}
        for v in problem.variables[1:]:
            assert neighbors[v] & seen
            seen.add(v)

    def test_pruning_empties_unsatisfiable_domains(self, consensus3):
        # colorless consensus at r=1 has no map; support pruning alone
        # discovers it (some domain empties), making the search trivial
        sub = _sub(consensus3, 1)
        problem = prepare_problem(sub, consensus3.delta, chromatic=False)
        stats = SearchStats()
        assert search_map(problem, stats=stats) is None
        assert stats.nodes <= len(problem.variables) + 1


class TestBudget:
    def test_budget_raises(self):
        t = set_agreement_task(3, 2)
        sub = _sub(t, 1)
        with pytest.raises(SearchBudgetExceeded):
            find_map(sub, t.delta, chromatic=True, max_nodes=3)

    def test_stats_populated(self, identity3):
        stats = SearchStats()
        sub = _sub(identity3, 1)
        find_map(sub, identity3.delta, chromatic=True, stats=stats)
        assert stats.nodes > 0
        assert stats.propagations > 0


class TestWitnessVerification:
    def test_verify_rejects_bad_map(self, identity3):
        from repro.topology.maps import SimplicialMap

        sub = _sub(identity3, 0)
        # constant map to a single vertex: simplicial but not carried by Δ
        target = identity3.output_complex.vertices[0]
        f = SimplicialMap(
            sub.complex,
            identity3.output_complex,
            {v: target for v in sub.complex.vertices},
            check=False,
        )
        assert not verify_map(sub, identity3.delta, f, chromatic=True)

    def test_programming_errors_in_validate_propagate(self, identity3, monkeypatch):
        # regression: verify_map used to swallow *every* exception from
        # f.validate(), so a bug in the verifier read as "invalid witness"
        # — i.e. a silent wrong answer.  Only NotSimplicialError means
        # that; anything else must surface with its traceback.
        from repro.topology.maps import SimplicialMap

        sub = _sub(identity3, 0)
        f = SimplicialMap(
            sub.complex,
            identity3.output_complex,
            {v: v for v in sub.complex.vertices},
            check=False,
        )

        def broken(self):
            raise TypeError("a bug in the verifier, not a bad witness")

        monkeypatch.setattr(SimplicialMap, "validate", broken)
        with pytest.raises(TypeError, match="bug in the verifier"):
            verify_map(sub, identity3.delta, f, chromatic=True)

    def test_not_simplicial_still_reads_as_invalid(self, identity3, monkeypatch):
        from repro.topology.maps import NotSimplicialError, SimplicialMap

        sub = _sub(identity3, 0)
        f = SimplicialMap(
            sub.complex,
            identity3.output_complex,
            {v: v for v in sub.complex.vertices},
            check=False,
        )

        def rejects(self):
            raise NotSimplicialError("collapsed a facet")

        monkeypatch.setattr(SimplicialMap, "validate", rejects)
        assert verify_map(sub, identity3.delta, f) is False

    def test_empty_domain_returns_none_fast(self, consensus3):
        # chromatic consensus at r=0: solo vertices force own input, but the
        # mixed facets then have no consistent image; search returns None
        stats = SearchStats()
        sub = _sub(consensus3, 0)
        assert find_map(sub, consensus3.delta, chromatic=True, stats=stats) is None
