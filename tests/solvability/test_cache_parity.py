"""The decision procedure must be bit-identical with caching on and off.

Interned simplices, memoized complex queries and the subdivision tower are
pure performance machinery; if any of them changed a verdict, a witness
depth, an obstruction kind or a split count, the caching layer would be
*wrong*, not just stale.  This suite decides representative zoo tasks both
ways and compares everything observable.
"""

from __future__ import annotations

import pytest

from repro import decide_solvability
from repro.tasks.zoo import (
    hourglass_task,
    identity_task,
    majority_consensus_task,
    path_task,
    pinwheel_task,
    two_process_fork_task,
)
from repro.topology import cache_clear, caching_disabled

ZOO = [
    ("majority", majority_consensus_task, 1),
    ("hourglass", hourglass_task, 1),
    ("pinwheel", pinwheel_task, 1),
    ("identity3", lambda: identity_task(3), 1),
    ("path3", lambda: path_task(3), 2),
    ("fork-2p", two_process_fork_task, 1),
]


def _fingerprint(verdict):
    """Everything observable about a verdict, minus wall-clock noise."""
    return {
        "status": verdict.status,
        "witness_rounds": verdict.witness_rounds,
        "witness_chromatic": verdict.witness_chromatic,
        "witness_values": (
            None
            if verdict.witness_map is None
            else tuple(
                (v, verdict.witness_map(v)) for v in verdict.witness_map.domain.vertices
            )
        ),
        "obstruction_kind": (
            None if verdict.obstruction is None else verdict.obstruction.kind
        ),
        "n_splits": verdict.stats.get("n_splits"),
        "search_nodes": verdict.stats.get("search_nodes"),
        "search_backtracks": verdict.stats.get("search_backtracks"),
    }


@pytest.mark.parametrize("name,make,rounds", ZOO, ids=[z[0] for z in ZOO])
def test_verdict_parity_caching_on_off(name, make, rounds):
    cache_clear()
    with caching_disabled():
        baseline = _fingerprint(decide_solvability(make(), max_rounds=rounds))
    cache_clear()
    cached = _fingerprint(decide_solvability(make(), max_rounds=rounds))
    assert cached == baseline
