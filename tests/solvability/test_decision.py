"""Unit tests for the combined decision procedure."""

import pytest

from repro.solvability.decision import (
    SolvabilityVerdict,
    Status,
    decide_solvability,
)
from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    identity_task,
    inputless_set_agreement_task,
    loop_agreement_task,
    path_task,
    set_agreement_task,
    triangle_loop,
    two_process_fork_task,
)


class TestVerdictObject:
    def test_solvable_flag(self, identity3):
        v = decide_solvability(identity3, max_rounds=0)
        assert v.solvable is True
        assert "solvable" in repr(v)

    def test_unsolvable_flag(self, consensus3):
        v = decide_solvability(consensus3, max_rounds=0)
        assert v.solvable is False
        assert v.obstruction is not None

    def test_stats_recorded(self, consensus3):
        v = decide_solvability(consensus3)
        assert "seconds" in v.stats
        assert "transform_seconds" in v.stats


class TestThreeProcessVerdicts:
    @pytest.mark.parametrize(
        "make,expected",
        [
            (lambda: identity_task(3), True),
            (lambda: constant_task(3), True),
            (lambda: set_agreement_task(3, 3), True),
            (lambda: loop_agreement_task(triangle_loop(True)), True),
            (lambda: consensus_task(3), False),
            (lambda: inputless_set_agreement_task(3, 2), False),
            (lambda: loop_agreement_task(triangle_loop(False)), False),
        ],
    )
    def test_zoo_verdicts(self, make, expected):
        v = decide_solvability(make(), max_rounds=1)
        assert v.solvable is expected

    def test_hourglass(self, hourglass):
        v = decide_solvability(hourglass)
        assert v.solvable is False
        assert v.obstruction.kind in ("corollary-5.5", "homological")
        assert v.stats["n_splits"] == 1

    def test_pinwheel(self, pinwheel):
        v = decide_solvability(pinwheel)
        assert v.solvable is False
        assert v.stats["n_splits"] == 9

    def test_majority(self, majority):
        v = decide_solvability(majority)
        assert v.solvable is False

    def test_witness_attached_for_solvables(self, identity3):
        v = decide_solvability(identity3)
        assert v.witness_map is not None
        assert v.witness_rounds == 0
        assert v.witness_subdivision is not None

    def test_obstructions_can_be_disabled(self, identity3):
        v = decide_solvability(identity3, run_obstructions=False)
        assert v.solvable is True

    def test_unsolvable_without_obstructions_is_unknown(self, consensus3):
        v = decide_solvability(consensus3, max_rounds=1, run_obstructions=False)
        assert v.status is Status.UNKNOWN


class TestTwoAndOneProcess:
    def test_one_process_trivially_solvable(self):
        t = identity_task(1)
        assert decide_solvability(t).solvable is True

    def test_two_process_exact(self):
        assert decide_solvability(path_task(3)).solvable is True
        assert decide_solvability(two_process_fork_task()).solvable is False
        assert decide_solvability(consensus_task(2)).solvable is False

    def test_two_process_solvable_beyond_budget(self):
        # Prop 5.4 declares it solvable even when the witness search budget
        # is too shallow to exhibit a map
        v = decide_solvability(path_task(7), max_rounds=1)
        assert v.solvable is True
        assert v.witness_map is None

    def test_too_many_processes_rejected(self):
        with pytest.raises(ValueError):
            decide_solvability(identity_task(4))


class TestEngines:
    def test_barycentric_engine(self):
        v = decide_solvability(path_task(3), engine="barycentric", max_rounds=2)
        assert v.solvable is True
        assert v.witness_rounds == 2  # Bary needs one more round than Ch

    def test_unknown_engine_rejected(self, identity3):
        with pytest.raises(ValueError):
            decide_solvability(identity3, engine="nope")

    def test_chromatic_witness_flag(self, identity3):
        v = decide_solvability(identity3, chromatic_witness=True)
        assert v.solvable is True
        assert v.witness_chromatic
        assert v.witness_map.is_chromatic()


class TestConsistency:
    """The two sides of the characterization never contradict each other."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_tasks_consistent(self, seed):
        from repro.tasks.zoo import random_single_input_task

        task = random_single_input_task(seed)
        with_obs = decide_solvability(task, max_rounds=1)
        without = decide_solvability(task, max_rounds=1, run_obstructions=False)
        if with_obs.solvable is False:
            assert without.status is not Status.SOLVABLE
        if without.solvable is True:
            assert with_obs.status is not Status.UNSOLVABLE
