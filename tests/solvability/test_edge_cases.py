"""Edge cases for the decision machinery.

Degenerate shapes that historically break task-solvability code: disjoint
input facets, globally disconnected output complexes that are fine
per-facet, single-vertex images everywhere, and value collisions between
input and output vocabularies.
"""

import pytest

from repro.solvability import (
    Status,
    corollary_5_5,
    decide_solvability,
    homological_obstruction,
)
from repro.tasks import Task, is_canonical
from repro.tasks.task import task_from_function
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import Simplex, Vertex, chrom


def disjoint_islands_task() -> Task:
    """Two input facets with no shared vertices, each with its own output
    island: O is globally disconnected yet the task is trivially solvable."""
    island_a = chrom((0, "a0"), (1, "a1"), (2, "a2"))
    island_b = chrom((0, "b0"), (1, "b1"), (2, "b2"))
    inputs = ChromaticComplex([island_a, island_b], name="I_islands")
    out_a = chrom((0, "pa"), (1, "qa"), (2, "ra"))
    out_b = chrom((0, "pb"), (1, "qb"), (2, "rb"))
    outputs = ChromaticComplex([out_a, out_b], name="O_islands")

    def rule(sigma):
        target = out_a if sigma.vertices <= island_a.vertices else out_b
        yield Simplex(v for v in target.vertices if v.color in sigma.colors())

    return task_from_function(inputs, outputs, rule, name="islands")


class TestDisjointIslands:
    def test_valid_and_canonical(self):
        task = disjoint_islands_task()
        task.validate()
        assert is_canonical(task)

    def test_disconnected_output_yet_solvable(self):
        task = disjoint_islands_task()
        assert len(task.output_complex.connected_components()) == 2
        verdict = decide_solvability(task, max_rounds=0)
        assert verdict.status is Status.SOLVABLE
        assert verdict.witness_rounds == 0

    def test_no_obstruction_fires(self):
        task = disjoint_islands_task()
        from repro.splitting import link_connected_form

        res = link_connected_form(task)
        assert corollary_5_5(res.task) is None
        assert homological_obstruction(res.task) is None

    def test_synthesis_and_run(self):
        from repro import synthesize_protocol
        from repro.runtime import validate_protocol

        task = disjoint_islands_task()
        protocol = synthesize_protocol(task)
        report = validate_protocol(task, protocol.factories, random_runs=3)
        assert report.ok


class TestValueCollisions:
    def test_same_values_in_input_and_output(self):
        # inputs and outputs both use 0/1: vertices are distinguished by
        # which complex holds them, never by identity tricks
        from repro.tasks.zoo import identity_task

        task = identity_task(3)
        shared = set(task.input_complex.vertices) & set(
            task.output_complex.vertices
        )
        assert shared  # literally the same Vertex objects
        verdict = decide_solvability(task, max_rounds=0)
        assert verdict.solvable is True

    def test_canonicalization_disambiguates(self):
        from repro.tasks.canonical import canonicalize
        from repro.tasks.zoo import identity_task

        cf = canonicalize(identity_task(3))
        assert not (
            set(cf.task.output_complex.vertices)
            & set(cf.task.input_complex.vertices)
        )


class TestSingleVertexImages:
    def test_constant_per_facet(self):
        # every input maps to one fixed output facet; link of every output
        # vertex inside Δ(σ) is a single edge (connected): no LAPs
        from repro.splitting import local_articulation_points
        from repro.tasks.zoo import constant_task

        task = constant_task(3)
        assert local_articulation_points(task) == ()

    def test_one_process_task(self):
        inputs = ChromaticComplex([chrom((0, "x")), chrom((0, "y"))])
        outputs = ChromaticComplex([chrom((0, "z"))])

        def rule(sigma):
            yield chrom((0, "z"))

        task = task_from_function(inputs, outputs, rule, name="solo")
        verdict = decide_solvability(task)
        assert verdict.solvable is True


class TestUnknownVerdicts:
    def test_unknown_is_honest(self, consensus3):
        # with obstructions off and a tiny budget, the only sound answer
        # for consensus is UNKNOWN — never SOLVABLE
        verdict = decide_solvability(
            consensus3, max_rounds=0, run_obstructions=False
        )
        assert verdict.status is Status.UNKNOWN
        assert verdict.witness_map is None
        assert verdict.obstruction is None
