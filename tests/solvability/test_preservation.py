"""Lemma 4.2 / Theorem 3.1 invariance: transforms preserve solvability.

These are the library's analogue of the paper's Figure 6 argument: the
decision verdict must be identical before and after canonicalization and
before and after LAP splitting (whenever both sides are decided).
"""

import pytest

from repro.solvability import Status, decide_solvability
from repro.splitting.pipeline import link_connected_form
from repro.tasks.canonical import canonicalize
from repro.tasks.zoo import (
    constant_task,
    hourglass_task,
    identity_task,
    majority_consensus_task,
    pinwheel_task,
    random_multi_facet_task,
    random_single_input_task,
    random_sparse_task,
)


def _verdicts_agree(task, transformed, max_rounds=1):
    v1 = decide_solvability(task, max_rounds=max_rounds)
    v2 = decide_solvability(transformed, max_rounds=max_rounds)
    if v1.solvable is not None and v2.solvable is not None:
        assert v1.solvable == v2.solvable, (
            f"{task!r}: {v1.status} but transformed {v2.status}"
        )
    return v1, v2


class TestCanonicalizationPreserves:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: identity_task(3),
            lambda: constant_task(3),
            lambda: majority_consensus_task(),
        ],
    )
    def test_zoo(self, make):
        task = make()
        _verdicts_agree(task, canonicalize(task).task)

    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        task = random_single_input_task(seed)
        _verdicts_agree(task, canonicalize(task).task)


class TestSplittingPreserves:
    @pytest.mark.parametrize(
        "make",
        [hourglass_task, pinwheel_task, majority_consensus_task],
    )
    def test_unsolvable_zoo(self, make):
        task = make()
        res = link_connected_form(task)
        v1 = decide_solvability(task, max_rounds=1)
        v2 = decide_solvability(res.task, max_rounds=1)
        assert v1.solvable is False
        assert v2.solvable is False

    @pytest.mark.parametrize("seed", range(8))
    def test_random_tasks(self, seed):
        task = random_single_input_task(seed)
        res = link_connected_form(task)
        _verdicts_agree(task, res.task)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sparse_tasks(self, seed):
        task = random_sparse_task(seed)
        res = link_connected_form(task)
        _verdicts_agree(task, res.task)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_multi_facet_tasks(self, seed):
        # multiple input facets: exercises canonicalization + cross-facet
        # copy duplication in the deformation (the σ' ≠ σ case of §4.1)
        task = random_multi_facet_task(seed)
        res = link_connected_form(task)
        assert res.n_splits >= 0
        _verdicts_agree(task, res.task)


class TestEmptyImageCorner:
    """Regression: monotonization may empty a solo image (seed 121) —
    a sound unsolvability certificate for the original task."""

    def test_seed_121_consistent(self):
        task = random_sparse_task(121)
        res = link_connected_form(task)
        assert not res.task.delta.is_strict()
        v_orig = decide_solvability(task, max_rounds=1)
        v_split = decide_solvability(res.task, max_rounds=1)
        assert v_orig.solvable is False
        assert v_split.solvable is False

    def test_empty_image_obstruction_fires(self):
        from repro.solvability import empty_image_obstruction

        task = random_sparse_task(121)
        res = link_connected_form(task)
        w = empty_image_obstruction(res.task)
        assert w is not None
        assert w.kind == "empty-image"


class TestTransformIdempotence:
    def test_split_task_needs_no_more_splits(self, pinwheel):
        once = link_connected_form(pinwheel)
        twice = link_connected_form(once.task)
        assert twice.n_splits == 0

    def test_canonical_of_canonical_is_identity(self, majority):
        from repro.tasks.canonical import canonicalize_if_needed

        once = canonicalize(majority).task
        assert canonicalize_if_needed(once).task is once
