"""The perf harness: measurement bookkeeping and the report JSON schema.

``benchmarks/BENCH_perf_core.json`` is consumed by later PRs to track the
perf trajectory, so its format is pinned here (fast, tier-1) independently
of the tier-2 benches that produce the real numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    SCHEMA,
    Measurement,
    PerfHarness,
    cache_counters,
    machine_info,
    validate_report,
)
from repro.topology import cache_clear


def _tiny_harness() -> PerfHarness:
    h = PerfHarness("unit")
    h.measure("warm", sum, range(100), repeat=3, meta={"kind": "demo"})
    h.measure("cold", sum, range(1000), counters={"items": 1000.0})
    return h


def test_measure_returns_result_and_measurement():
    h = PerfHarness("unit")
    result, m = h.measure("sum", sum, range(10), repeat=2)
    assert result == 45
    assert m.repeats == 2 and len(m.seconds_each) == 2
    assert m.best <= m.mean
    assert h["sum"] is m
    with pytest.raises(KeyError):
        h["nope"]
    with pytest.raises(ValueError):
        h.measure("bad", sum, range(1), repeat=0)


def test_speedup_ratio_and_derived_entry():
    h = PerfHarness("unit")
    h.measurements.append(Measurement("slow", [2.0]))
    h.measurements.append(Measurement("fast", [0.5]))
    assert h.speedup("slow", "fast") == pytest.approx(4.0)
    assert h.to_report()["derived"]["speedup:fast/slow"] == pytest.approx(4.0)


def test_report_passes_schema_and_roundtrips(tmp_path):
    h = _tiny_harness()
    payload = h.write(str(tmp_path / "out.json"))
    assert validate_report(payload) == []
    assert payload["schema"] == SCHEMA
    on_disk = json.loads((tmp_path / "out.json").read_text())
    assert validate_report(on_disk) == []
    assert [r["name"] for r in on_disk["results"]] == ["warm", "cold"]
    assert on_disk["results"][1]["counters"] == {"items": 1000.0}


def test_validate_report_catches_malformed_payloads():
    assert validate_report(None) != []
    assert validate_report({}) != []
    good = _tiny_harness().to_report()
    assert validate_report(good) == []

    for mutate in (
        lambda p: p.update(schema="wrong/0"),
        lambda p: p.update(results=[]),
        lambda p: p["results"][0].update(seconds_each=[]),
        lambda p: p["results"][0].update(seconds_each=[-1.0]),
        lambda p: p["results"][0].update(repeats=99),
        lambda p: p["results"][0].update(best_seconds=123.0),
        lambda p: p["results"][0].update(counters={"x": "NaN-ish"}),
        lambda p: p["machine"].update(cpu_count="many"),
        lambda p: p.update(derived={"s": "fast"}),
    ):
        payload = json.loads(json.dumps(good))
        mutate(payload)
        assert validate_report(payload) != [], mutate


def test_validate_report_rejects_corrupted_mean():
    # regression: best_seconds was cross-checked against seconds_each but
    # mean_seconds was not, so a corrupted mean validated clean
    payload = json.loads(json.dumps(_tiny_harness().to_report()))
    payload["results"][0]["mean_seconds"] = 123.0
    problems = validate_report(payload)
    assert problems != []
    assert any("mean_seconds" in p for p in problems)


def test_validate_report_rejects_duplicate_measurement_names():
    # regression: duplicate names validated clean even though harness
    # lookups (and speedups) silently resolve to the first match
    payload = json.loads(json.dumps(_tiny_harness().to_report()))
    clone = json.loads(json.dumps(payload["results"][0]))
    payload["results"].append(clone)
    problems = validate_report(payload)
    assert problems != []
    assert any("duplicate" in p for p in problems)


def test_measure_rejects_duplicate_name():
    h = PerfHarness("unit")
    h.measure("same", sum, range(10))
    with pytest.raises(ValueError, match="duplicate measurement name"):
        h.measure("same", sum, range(20))
    # the failed call must not have recorded anything
    assert [m.name for m in h.measurements] == ["same"]


@pytest.mark.parametrize("degenerate", [0.0, -1.0, float("inf"), float("nan")])
def test_speedup_raises_on_degenerate_contender(degenerate):
    # regression: a ~0s contender was clamped to 1e-12, fabricating a
    # huge finite speedup for cached no-op workloads
    h = PerfHarness("unit")
    h.measurements.append(Measurement("slow", [1.0]))
    h.measurements.append(Measurement("zero", [degenerate]))
    with pytest.raises(ValueError, match="degenerate best time"):
        h.speedup("slow", "zero")
    with pytest.raises(ValueError, match="degenerate best time"):
        h.speedup("zero", "slow")
    # no bogus derived ratio may survive the failed computation
    assert h.derived == {}


def test_write_refuses_invalid_report(tmp_path):
    h = PerfHarness("unit")  # no measurements -> empty results
    with pytest.raises(ValueError):
        h.write(str(tmp_path / "bad.json"))


def test_machine_info_fields():
    info = machine_info()
    assert isinstance(info["cpu_count"], int) and info["cpu_count"] >= 1
    assert isinstance(info["python"], str)


def test_cache_counters_flatten():
    from repro.topology.complexes import SimplicialComplex

    cache_clear()
    k = SimplicialComplex([("a", "b", "c")])
    k.f_vector()
    k.f_vector()
    flat = cache_counters()
    assert flat["cache.SimplicialComplex.f_vector.hits"] == 1.0
    assert flat["cache.SimplicialComplex.f_vector.misses"] == 1.0
    assert all(isinstance(v, float) for v in flat.values())
    cache_clear()
