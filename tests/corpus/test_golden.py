"""Committed golden corpora gate generator/hash/decision drift.

The manifests under ``golden/`` were produced by real corpus runs and are
committed as verdicts of record.  Any behavioral change to the random
generators, the isomorphism-canonical hashing, or the decision procedure
shows up here as drift — which is either a regression (fix the code) or
an intended change (regenerate the goldens, see docs/census_corpus.md).

The quick tests replay a prefix of each corpus; the full replays are
``slow``-marked (CI's corpus-smoke job runs them, plus a fresh 500-seed
sharded run, on every push).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.corpus import (
    CorpusConfig,
    census_from_manifest,
    load_manifest,
    validate_manifest,
    verify_manifest,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN = {
    "single-500": os.path.join(GOLDEN_DIR, "manifest-single-500.json"),
    "sparse-300": os.path.join(GOLDEN_DIR, "manifest-sparse-300.json"),
}


@pytest.fixture(params=sorted(GOLDEN), ids=sorted(GOLDEN))
def golden(request):
    return load_manifest(GOLDEN[request.param])


def test_goldens_validate(golden):
    assert validate_manifest(golden) == []


def test_goldens_have_real_dedup(golden):
    # the whole point of the corpus: far fewer decisions than seeds
    dedup = golden["dedup"]
    assert dedup["rate"] > 0.5
    assert dedup["distinct_hashes"] < dedup["population"] / 4


def test_sparse_golden_exercises_unsolvable_certificates():
    payload = load_manifest(GOLDEN["sparse-300"])
    census = census_from_manifest(payload)
    assert census.unsolvable > 0
    assert any(kind != "witness-map" for kind in census.certificates)


def test_golden_prefix_replays_without_drift(golden):
    # a bounded replay keeps the tier-1 suite fast; every drift mode the
    # full replay can catch (hash, status, certificate, depth, splits) is
    # equally observable on a prefix
    assert verify_manifest(golden, limit=60) == []


@pytest.mark.slow
def test_golden_full_replay_single():
    assert verify_manifest(load_manifest(GOLDEN["single-500"])) == []


@pytest.mark.slow
def test_golden_full_replay_sparse():
    assert verify_manifest(load_manifest(GOLDEN["sparse-300"])) == []
