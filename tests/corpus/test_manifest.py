"""``repro-corpus/1`` manifests: schema, round-trip, and drift detection."""

from __future__ import annotations

import copy

import pytest

from repro.analysis.corpus import (
    SCHEMA,
    CorpusConfig,
    CorpusError,
    census_from_manifest,
    load_manifest,
    run_corpus,
    validate_manifest,
    verify_manifest,
)
from repro.topology import diskstore
from repro.topology.diskstore import write_json_atomic

CONFIG = CorpusConfig(seed_start=0, seed_stop=18, shards=2)


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    # module-scoped, so it runs before the function-scoped autouse store
    # isolation: pin its own throwaway verdict store explicitly
    root = tmp_path_factory.mktemp("manifest")
    with diskstore.store_at(str(root / "towers")):
        return run_corpus(CONFIG, str(root / "corpus"))


class TestRoundTrip:
    def test_written_manifest_loads_and_validates(self, result):
        payload = load_manifest(result.manifest_path)
        assert payload == result.manifest
        assert validate_manifest(payload) == []
        assert payload["schema"] == SCHEMA

    def test_census_section_reconstructs_the_census(self, result):
        rebuilt = census_from_manifest(result.manifest)
        assert rebuilt.as_tuple() == result.census.as_tuple()

    def test_config_section_reconstructs_the_config(self, result):
        assert CorpusConfig.from_dict(result.manifest["config"]) == CONFIG

    def test_verdict_rows_cover_the_seed_range_in_order(self, result):
        seeds = [row[0] for row in result.manifest["verdicts"]]
        assert seeds == list(range(18))


class TestValidation:
    def test_non_object_rejected(self):
        assert validate_manifest([1, 2]) == ["manifest must be a JSON object"]

    def test_wrong_schema_flagged(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["schema"] = "repro-corpus/0"
        assert any("schema" in p for p in validate_manifest(payload))

    def test_population_verdict_mismatch_flagged(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["verdicts"] = payload["verdicts"][:-1]
        assert any("verdict rows" in p for p in validate_manifest(payload))

    def test_malformed_verdict_row_flagged(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["verdicts"][0] = [0, "hash", "maybe", "witness-map", 1, 0]
        assert any("verdicts[0]" in p for p in validate_manifest(payload))

    def test_inconsistent_dedup_totals_flagged(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["dedup"]["dedup_hits"] += 1
        assert any("dedup" in p for p in validate_manifest(payload))

    def test_load_manifest_raises_on_invalid(self, result, tmp_path):
        payload = copy.deepcopy(result.manifest)
        del payload["census"]
        path = str(tmp_path / "bad.json")
        write_json_atomic(path, payload)
        with pytest.raises(CorpusError, match="missing key 'census'"):
            load_manifest(path)


class TestVerifyReplay:
    def test_intact_manifest_has_no_drift(self, result):
        assert verify_manifest(result.manifest) == []

    def test_limit_bounds_the_replay(self, result):
        assert verify_manifest(result.manifest, limit=5) == []

    def test_tampered_status_is_drift(self, result):
        payload = copy.deepcopy(result.manifest)
        row = payload["verdicts"][0]
        row[2] = "unsolvable" if row[2] == "solvable" else "solvable"
        drift = verify_manifest(payload, limit=1)
        assert len(drift) == 1 and "seed 0" in drift[0]

    def test_tampered_hash_is_drift(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["verdicts"][3][1] = "0" * 40
        drift = verify_manifest(payload, limit=4)
        assert len(drift) == 1 and "canonical hash" in drift[0]

    def test_invalid_manifest_short_circuits_verification(self, result):
        payload = copy.deepcopy(result.manifest)
        payload["schema"] = "bogus"
        drift = verify_manifest(payload)
        assert drift and all(d.startswith("invalid manifest") for d in drift)
