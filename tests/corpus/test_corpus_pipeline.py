"""The streaming corpus must equal the in-memory census, however it runs.

Every property here reduces to one invariant: the corpus's merged
``Census.as_tuple()`` is a function of (config) alone — shard layout
changes which file a seed's record lands in, worker counts change who
writes it, interruptions change when, and dedup changes whether the
decision procedure actually ran.  None of them may change any aggregate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import run_census
from repro.analysis.corpus import (
    CorpusConfig,
    CorpusError,
    canon_hash,
    census_from_records,
    load_shard,
    run_corpus,
    run_shard,
    shard_path,
)
from repro.tasks.zoo.random_tasks import random_single_input_task
from repro.topology import diskstore

POP = 30
CONFIG = CorpusConfig(seed_start=0, seed_stop=POP, shards=3)


@pytest.fixture(scope="module")
def serial_census(tmp_path_factory):
    # module-scoped, so it runs before the function-scoped autouse store
    # isolation: pin its own throwaway verdict store explicitly
    with diskstore.store_at(str(tmp_path_factory.mktemp("serial") / "towers")):
        return run_census(range(POP))


# -- Config validation ---------------------------------------------------------


class TestCorpusConfig:
    def test_empty_seed_range_rejected(self):
        with pytest.raises(CorpusError, match=r"empty seed range \[5, 5\)"):
            CorpusConfig(seed_start=5, seed_stop=5).validate()

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(CorpusError, match="shards must be at least 1"):
            CorpusConfig(seed_start=0, seed_stop=10, shards=0).validate()

    def test_more_shards_than_seeds_rejected(self):
        with pytest.raises(CorpusError, match="empty shards"):
            CorpusConfig(seed_start=0, seed_stop=3, shards=4).validate()

    def test_unknown_generator_rejected(self):
        with pytest.raises(CorpusError, match="unknown generator 'bogus'"):
            CorpusConfig(seed_start=0, seed_stop=10, generator="bogus").validate()

    def test_negative_max_rounds_rejected(self):
        with pytest.raises(CorpusError, match="max_rounds must be non-negative"):
            CorpusConfig(seed_start=0, seed_stop=10, max_rounds=-1).validate()

    def test_shard_ranges_partition_the_seed_range(self):
        config = CorpusConfig(seed_start=7, seed_stop=29, shards=4)
        ranges = config.shard_ranges()
        assert len(ranges) == 4
        assert ranges[0][0] == 7 and ranges[-1][1] == 29
        # contiguous, non-overlapping, near-equal
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 22
        assert max(sizes) - min(sizes) <= 1

    def test_dict_round_trip(self):
        assert CorpusConfig.from_dict(CONFIG.as_dict()) == CONFIG

    def test_malformed_dict_rejected(self):
        with pytest.raises(CorpusError, match="malformed corpus config"):
            CorpusConfig.from_dict({"seed_start": 0})


# -- Shard files: checkpointing and torn-tail recovery -------------------------


class TestShardCheckpoints:
    def test_missing_file_is_a_fresh_shard(self, tmp_path):
        state = load_shard(str(tmp_path / "absent.jsonl"), 10, 20)
        assert state.records == [] and state.next_seed == 10 and not state.torn

    def test_limit_pauses_and_resumes_mid_shard(self, tmp_path):
        root = str(tmp_path / "corpus")
        config = CorpusConfig(seed_start=0, seed_stop=12, shards=1)
        first = run_shard(config, 0, root, limit=5)
        assert [r["seed"] for r in first] == list(range(5))
        state = load_shard(shard_path(root, 0), 0, 12)
        assert state.next_seed == 5 and not state.torn
        resumed = run_shard(config, 0, root)
        assert [r["seed"] for r in resumed] == list(range(12))
        # the paused-then-resumed shard equals an uninterrupted one
        straight = run_shard(config, 0, str(tmp_path / "straight"))
        strip = lambda rs: [{k: v for k, v in r.items() if k != "runtime"} for r in rs]
        assert strip(resumed) == strip(straight)

    def test_torn_garbage_tail_is_truncated_on_resume(self, tmp_path):
        root = str(tmp_path / "corpus")
        config = CorpusConfig(seed_start=0, seed_stop=8, shards=1)
        run_shard(config, 0, root, limit=4)
        path = shard_path(root, 0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seed": 4, "canon_hash": "tr')  # writer died mid-line
        state = load_shard(path, 0, 8)
        assert state.torn and state.next_seed == 4
        records = run_shard(config, 0, root)
        assert [r["seed"] for r in records] == list(range(8))
        # the file itself holds exactly the committed records again
        assert not load_shard(path, 0, 8).torn

    def test_unterminated_valid_json_tail_is_uncommitted(self, tmp_path):
        # a record missing its trailing newline parses fine but was never
        # committed — resume must re-decide that seed, not trust the tail
        root = str(tmp_path / "corpus")
        config = CorpusConfig(seed_start=0, seed_stop=6, shards=1)
        records = run_shard(config, 0, root, limit=3)
        path = shard_path(root, 0)
        tail = dict(records[-1], seed=3)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(tail, sort_keys=True))  # no "\n"
        state = load_shard(path, 0, 6)
        assert state.torn and state.next_seed == 3
        assert [r["seed"] for r in run_shard(config, 0, root)] == list(range(6))

    def test_out_of_sequence_record_is_torn(self, tmp_path):
        root = str(tmp_path / "corpus")
        config = CorpusConfig(seed_start=0, seed_stop=6, shards=1)
        records = run_shard(config, 0, root, limit=2)
        path = shard_path(root, 0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(dict(records[0], seed=5)) + "\n")
        state = load_shard(path, 0, 6)
        assert state.torn and state.next_seed == 2


# -- Whole-run orchestration ---------------------------------------------------


class TestRunCorpus:
    def test_corpus_census_equals_in_memory_census(self, tmp_path, serial_census):
        result = run_corpus(CONFIG, str(tmp_path / "corpus"))
        assert result.census.as_tuple() == serial_census.as_tuple()
        assert [r["seed"] for r in result.records] == list(range(POP))

    def test_pooled_equals_serial(self, tmp_path, serial_census):
        result = run_corpus(CONFIG, str(tmp_path / "corpus"), workers=3)
        assert result.census.as_tuple() == serial_census.as_tuple()

    def test_shard_layout_is_invisible_to_aggregates(self, tmp_path, serial_census):
        one = run_corpus(
            CorpusConfig(seed_start=0, seed_stop=POP, shards=1),
            str(tmp_path / "one"),
        )
        five = run_corpus(
            CorpusConfig(seed_start=0, seed_stop=POP, shards=5),
            str(tmp_path / "five"),
        )
        assert one.census.as_tuple() == five.census.as_tuple() == serial_census.as_tuple()

    def test_existing_run_requires_resume_flag(self, tmp_path):
        root = str(tmp_path / "corpus")
        run_corpus(CONFIG, root)
        with pytest.raises(CorpusError, match="pass resume=True"):
            run_corpus(CONFIG, root)

    def test_config_mismatch_refused_even_with_resume(self, tmp_path):
        root = str(tmp_path / "corpus")
        run_corpus(CONFIG, root)
        other = CorpusConfig(seed_start=0, seed_stop=POP, shards=2)
        with pytest.raises(CorpusError, match="refusing to continue"):
            run_corpus(other, root, resume=True)

    def test_dedup_reuses_representative_verdicts(self, tmp_path):
        result = run_corpus(
            CorpusConfig(seed_start=0, seed_stop=POP, shards=1),
            str(tmp_path / "corpus"),
        )
        dedup = result.manifest["dedup"]
        assert dedup["population"] == POP
        assert dedup["decided"] + dedup["dedup_hits"] == POP
        # single-shard dedup decides exactly one task per isomorphism class
        assert dedup["decided"] == dedup["distinct_hashes"]
        assert dedup["rate"] == pytest.approx(dedup["dedup_hits"] / POP)
        # and the reused verdicts really are class-invariant: recomputing
        # every record from scratch (no dedup) gives the same aggregates
        fresh = run_census(range(POP))
        assert census_from_records(result.records).as_tuple() == fresh.as_tuple()

    def test_nonpositive_workers_rejected(self, tmp_path):
        with pytest.raises(CorpusError, match="workers must be at least 1"):
            run_corpus(CONFIG, str(tmp_path / "corpus"), workers=0)

    def test_dedup_counters_are_emitted(self, tmp_path):
        from repro import obs

        obs.reset_recorder()
        with obs.tracing():
            result = run_corpus(
                CorpusConfig(seed_start=0, seed_stop=POP, shards=1),
                str(tmp_path / "corpus"),
            )
        counters = dict(obs.get_recorder().aggregate_counters())
        dedup = result.manifest["dedup"]
        assert counters["corpus.dedup.hit"] == dedup["dedup_hits"]
        assert counters["corpus.dedup.miss"] == dedup["decided"]
        assert counters["corpus.tasks"] == POP


# -- Interrupt anywhere, resume, lose nothing ----------------------------------


class _KillSwitch(RuntimeError):
    pass


class TestKillAndResume:
    def test_interrupted_resume_is_bit_identical(
        self, tmp_path, monkeypatch, serial_census
    ):
        import repro.analysis.corpus as corpus_mod

        root = str(tmp_path / "corpus")
        real_decide = corpus_mod._decide_with_store
        calls = {"n": 0}

        def dying_decide(task, max_rounds):
            calls["n"] += 1
            if calls["n"] > 7:
                raise _KillSwitch("simulated crash mid-shard")
            return real_decide(task, max_rounds)

        monkeypatch.setattr(corpus_mod, "_decide_with_store", dying_decide)
        with pytest.raises(_KillSwitch):
            run_corpus(CONFIG, root)
        # some shards hold committed prefixes; the run config is pinned
        assert os.path.exists(os.path.join(root, "run.json"))
        committed = sum(
            len(load_shard(shard_path(root, s), lo, hi).records)
            for s, (lo, hi) in enumerate(CONFIG.shard_ranges())
        )
        assert 0 < committed < POP

        monkeypatch.setattr(corpus_mod, "_decide_with_store", real_decide)
        result = run_corpus(CONFIG, root, resume=True)
        assert result.census.as_tuple() == serial_census.as_tuple()
        assert [r["seed"] for r in result.records] == list(range(POP))

    def test_canon_hash_is_stable_across_calls(self):
        task = random_single_input_task(3)
        again = random_single_input_task(3)
        assert canon_hash(task) == canon_hash(again)
