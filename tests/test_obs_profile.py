"""Unit tests for the profiling exports (``repro.obs.profile``).

Pins the folded-stack grammar (``frame;frame count`` — the acceptance
criterion for ``trace flame``), the Chrome trace-event structure, and
the opt-in tracemalloc peak-bytes span attributes.
"""

import json
import re

import pytest

from repro import obs
from repro.obs import (
    chrome_trace,
    folded_stacks,
    format_profile,
    write_chrome_trace,
    write_folded,
)

FOLDED_LINE = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.set_tracing(False)
    obs.set_memory_profiling(False)
    obs.reset_recorder()
    yield
    obs.set_tracing(False)
    obs.set_memory_profiling(False)
    obs.reset_recorder()


def _payload():
    """A trace with a nested parent tree and one worker snapshot."""
    with obs.tracing():
        with obs.span("decide"):
            with obs.span("transform"):
                sum(range(20000))
            with obs.span("search"):
                sum(range(20000))
    with obs.capture_worker() as capture:
        with obs.span("work"):
            sum(range(20000))
    obs.merge_worker_snapshot(capture.snapshot)
    return obs.build_trace(meta={"command": "unit-test"})


class TestFoldedStacks:
    def test_lines_match_the_folded_grammar(self):
        lines = folded_stacks(_payload())
        assert lines
        for line in lines:
            assert FOLDED_LINE.match(line), line

    def test_stacks_are_semicolon_joined_ancestries(self):
        stacks = {line.rsplit(" ", 1)[0] for line in folded_stacks(_payload())}
        assert "decide;transform" in stacks
        assert "decide;search" in stacks

    def test_worker_spans_root_under_worker_frame(self):
        lines = folded_stacks(_payload())
        assert any(line.startswith("worker[") for line in lines)

    def test_counts_are_self_time_so_widths_sum(self):
        # the parent's own line (if any) excludes its children's time:
        # every count is >= 0 and the decide frame appears as a prefix
        payload = _payload()
        for line in folded_stacks(payload):
            assert int(line.rsplit(" ", 1)[1]) >= 0

    def test_frame_separators_are_sanitized(self):
        with obs.tracing():
            with obs.span("odd;name with space"):
                pass
        lines = folded_stacks(obs.build_trace())
        assert lines == [] or all(FOLDED_LINE.match(line) for line in lines)

    def test_metric_selects_the_clock(self):
        payload = _payload()
        wall = folded_stacks(payload, metric="wall")
        cpu = folded_stacks(payload, metric="cpu")
        assert {line.rsplit(" ", 1)[0] for line in cpu} <= {
            line.rsplit(" ", 1)[0] for line in wall
        } | {line.rsplit(" ", 1)[0] for line in cpu}
        with pytest.raises(ValueError, match="metric"):
            folded_stacks(payload, metric="gpu")

    def test_write_folded_and_format_profile_agree(self, tmp_path):
        payload = _payload()
        path = tmp_path / "folded.txt"
        count = write_folded(str(path), payload)
        text = path.read_text()
        assert count == len(text.splitlines())
        assert text.strip() == format_profile(payload)


class TestChromeTrace:
    def test_events_structure(self):
        trace = chrome_trace(_payload())
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert spans and metas
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
        names = {e["name"] for e in spans}
        assert {"decide", "transform", "search", "work"} <= names

    def test_workers_get_their_own_pid_track(self):
        trace = chrome_trace(_payload())
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert 0 in pids and len(pids) == 2

    def test_timeline_nesting_is_consistent(self):
        # children start at or after the parent and end within it
        trace = chrome_trace(_payload())
        spans = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        parent, child = spans["decide"], spans["transform"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = tmp_path / "chrome.json"
        trace = write_chrome_trace(str(path), _payload())
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(trace))
        assert on_disk["otherData"]["schema"] == obs.SCHEMA


class TestMemoryProfiling:
    def test_off_by_default_no_attrs(self):
        payload = _payload()
        root = payload["spans"][0]
        assert "mem_peak_bytes" not in root["attrs"]

    def test_opt_in_attaches_peak_bytes(self):
        obs.set_memory_profiling(True)
        assert obs.memory_profiling_enabled()
        with obs.tracing():
            with obs.span("alloc"):
                blob = [0] * 50000
                del blob
        payload = obs.build_trace()
        peak = payload["spans"][0]["attrs"]["mem_peak_bytes"]
        assert isinstance(peak, int)
        assert peak > 50000 * 4  # a list of 50k ints is at least this big

    def test_parent_peak_covers_children(self):
        obs.set_memory_profiling(True)
        with obs.tracing():
            with obs.span("outer"):
                with obs.span("inner"):
                    blob = [0] * 50000
                    del blob
        payload = obs.build_trace()
        outer = payload["spans"][0]
        inner = outer["children"][0]
        assert outer["attrs"]["mem_peak_bytes"] >= inner["attrs"]["mem_peak_bytes"]

    def test_traces_with_memory_attrs_stay_schema_valid(self):
        obs.set_memory_profiling(True)
        with obs.tracing():
            with obs.span("alloc"):
                pass
        assert obs.validate_trace(obs.build_trace()) == []
