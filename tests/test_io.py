"""Unit tests for JSON serialization."""

import io as stdio
import json

import pytest

from repro.io import (
    SerializationError,
    complex_from_json,
    complex_to_json,
    decode_value,
    encode_value,
    load_task,
    save_task,
    task_from_json,
    task_to_json,
)
from repro.splitting import link_connected_form
from repro.splitting.deformation import SplitValue
from repro.tasks.canonical import canonicalize
from repro.topology.simplex import Simplex, Vertex, chrom
from repro.topology.subdivision import Barycenter, iterated_chromatic_subdivision


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            2.5,
            "text",
            Vertex(1, "x"),
            Simplex([Vertex(0, "a"), Vertex(1, "b")]),
            SplitValue("v", 2),
            SplitValue(SplitValue("v", 0), 1),
            ("a", 1, None),
            frozenset({"p", "q"}),
            Barycenter(Simplex(["a", "b"])),
            Vertex(0, ("in", "out")),
            Vertex(2, Simplex([Vertex(0, "nested")])),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_json_serializable(self):
        payload = encode_value(Vertex(0, Simplex([Vertex(1, ("deep", 3))])))
        assert json.loads(json.dumps(payload)) == payload

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value({"$": "martian"})


class TestComplexRoundtrip:
    def test_plain(self, disk):
        assert complex_from_json(complex_to_json(disk)) == disk

    def test_chromatic_class_preserved(self, triangle_complex):
        back = complex_from_json(complex_to_json(triangle_complex))
        assert back == triangle_complex
        from repro.topology.chromatic import ChromaticComplex

        assert isinstance(back, ChromaticComplex)

    def test_name_preserved(self, triangle_complex):
        back = complex_from_json(complex_to_json(triangle_complex))
        assert back.name == triangle_complex.name

    def test_bad_payload(self):
        with pytest.raises(SerializationError):
            complex_from_json({"$": "task"})


class TestTaskRoundtrip:
    @pytest.mark.parametrize(
        "fixture", ["hourglass", "pinwheel", "majority", "figure3", "identity3"]
    )
    def test_zoo_roundtrip(self, fixture, request):
        task = request.getfixturevalue(fixture)
        back = task_from_json(task_to_json(task))
        assert back == task

    def test_split_task_roundtrip(self, hourglass):
        split = link_connected_form(hourglass).task
        back = task_from_json(task_to_json(split))
        assert back == split

    def test_canonical_task_roundtrip(self, majority):
        star = canonicalize(majority).task
        back = task_from_json(task_to_json(star))
        assert back == star

    def test_file_roundtrip(self, hourglass, tmp_path):
        path = str(tmp_path / "task.json")
        save_task(hourglass, path)
        assert load_task(path) == hourglass

    def test_stream_roundtrip(self, pinwheel):
        buf = stdio.StringIO()
        save_task(pinwheel, buf)
        buf.seek(0)
        assert load_task(buf) == pinwheel

    def test_verdict_stable_after_roundtrip(self, hourglass):
        from repro.solvability import decide_solvability

        back = task_from_json(task_to_json(hourglass))
        assert decide_solvability(back).solvable is False
