"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    figure3_task,
    hourglass_task,
    identity_task,
    inputless_set_agreement_task,
    majority_consensus_task,
    path_task,
    pinwheel_task,
    set_agreement_task,
    single_facet_input,
    triangle_loop,
    two_process_fork_task,
)
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, Vertex, chrom


@pytest.fixture(autouse=True)
def _isolated_telemetry(tmp_path, monkeypatch):
    """Point $REPRO_TELEMETRY at a per-test path.

    Traced CLI invocations append ``repro-run/1`` records to the resolved
    store; without this every test that passes ``--trace`` would write
    into the repo's ``.repro/telemetry.jsonl``.
    """
    monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "telemetry.jsonl"))


@pytest.fixture(autouse=True)
def _isolated_tower_store(tmp_path, monkeypatch):
    """Point $REPRO_TOWER_CACHE at a per-test directory.

    The persistent subdivision-tower/transform store resolves to
    ``.repro/towers`` by default; without this, any test that decides a
    task would seed cross-test (and cross-run) warm state in the repo
    checkout, making timings and counter assertions order-dependent.
    """
    monkeypatch.setenv("REPRO_TOWER_CACHE", str(tmp_path / "towers"))


@pytest.fixture
def triangle() -> Simplex:
    """A chromatic 2-simplex with three distinct colors."""
    return chrom((0, "a"), (1, "b"), (2, "c"))


@pytest.fixture
def triangle_complex(triangle) -> ChromaticComplex:
    return ChromaticComplex([triangle], name="T")


@pytest.fixture
def circle() -> SimplicialComplex:
    """A hollow triangle (homotopy circle)."""
    return SimplicialComplex([("a", "b"), ("b", "c"), ("c", "a")], name="S1")


@pytest.fixture
def disk() -> SimplicialComplex:
    """A filled triangle (contractible)."""
    return SimplicialComplex([("a", "b", "c")], name="D2")


@pytest.fixture
def two_triangles() -> SimplicialComplex:
    """Two triangles glued along an edge."""
    return SimplicialComplex([("a", "b", "c"), ("b", "c", "d")])


@pytest.fixture
def bowtie() -> SimplicialComplex:
    """Two triangles glued at a single vertex — the minimal non-link-connected
    pure 2-complex (the hourglass shape)."""
    return SimplicialComplex([("a", "b", "w"), ("c", "d", "w")])


@pytest.fixture(scope="session")
def hourglass():
    return hourglass_task()


@pytest.fixture(scope="session")
def pinwheel():
    return pinwheel_task()


@pytest.fixture(scope="session")
def majority():
    return majority_consensus_task()


@pytest.fixture(scope="session")
def figure3():
    return figure3_task()


@pytest.fixture(scope="session")
def identity3():
    return identity_task(3)


@pytest.fixture(scope="session")
def consensus3():
    return consensus_task(3)
