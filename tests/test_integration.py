"""End-to-end integration tests: the full pipeline on the paper's examples.

Each test runs the complete chain
``task → canonicalize → split → decide → (synthesize → simulate)``
and checks the paper's headline claims.
"""

import pytest

from repro import decide_solvability, link_connected_form, synthesize_protocol
from repro.runtime import validate_protocol
from repro.solvability import Status
from repro.tasks.zoo import (
    fan_task,
    hourglass_task,
    identity_task,
    loop_agreement_task,
    majority_consensus_task,
    pinwheel_task,
    random_single_input_task,
    set_agreement_task,
    triangle_loop,
)


class TestPaperHeadlines:
    def test_hourglass_full_story(self):
        """Figure 2 + Section 6.1: colorless-ACT-compatible yet unsolvable."""
        task = hourglass_task()
        # (a) one LAP, split disconnects O into two components
        res = link_connected_form(task)
        assert res.n_splits == 1
        assert len(res.task.output_complex.connected_components()) == 2
        # (b) the colorless continuous-map condition holds pre-split
        from repro.solvability.map_search import find_map
        from repro.topology.subdivision import iterated_barycentric_subdivision

        sub = iterated_barycentric_subdivision(task.input_complex, 2)
        assert find_map(sub, task.delta, chromatic=False) is not None
        # (c) nevertheless unsolvable, detected after splitting
        verdict = decide_solvability(task)
        assert verdict.status is Status.UNSOLVABLE

    def test_pinwheel_full_story(self):
        """Figure 8 + Section 6.2: three components, none covering all solos."""
        task = pinwheel_task()
        res = link_connected_form(task)
        comps = res.task.output_complex.connected_components()
        assert len(comps) == 3
        verdict = decide_solvability(task)
        assert verdict.status is Status.UNSOLVABLE

    def test_majority_full_story(self):
        """Figure 1: needs canonicalization first, then LAP reasoning."""
        task = majority_consensus_task()
        verdict = decide_solvability(task)
        assert verdict.status is Status.UNSOLVABLE
        assert verdict.stats["n_splits"] > 0

    def test_solvable_task_round_trip(self):
        """decide → synthesize → simulate, via the Figure 7 construction."""
        task = set_agreement_task(3, 3)
        verdict = decide_solvability(task)
        assert verdict.status is Status.SOLVABLE
        protocol = synthesize_protocol(task, verdict=verdict, prefer_direct=False)
        assert protocol.mode == "figure-7"
        report = validate_protocol(
            task, protocol.factories, participation="facets", random_runs=3
        )
        assert report.ok, report.violations[:2]

    def test_loop_agreement_pair(self):
        """Contractible loop solvable, hollow loop unsolvable."""
        assert decide_solvability(
            loop_agreement_task(triangle_loop(True))
        ).solvable is True
        assert decide_solvability(
            loop_agreement_task(triangle_loop(False))
        ).solvable is False


class TestFanFamily:
    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_fan_splits_into_r_components(self, r):
        task = fan_task(components=r)
        res = link_connected_form(task)
        assert res.n_splits >= 1
        assert len(res.task.output_complex.connected_components()) == r

    def test_fan_with_long_strips(self):
        task = fan_task(components=2, strip_length=4)
        res = link_connected_form(task)
        assert len(res.task.output_complex.connected_components()) == 2

    @pytest.mark.parametrize("r", [2, 3])
    def test_untwisted_fan_solvable(self, r):
        # everyone can settle on strip 0: constants solve the plain fan
        verdict = decide_solvability(fan_task(components=r))
        assert verdict.solvable is True
        assert verdict.witness_rounds == 0

    @pytest.mark.parametrize("r", [2, 3])
    def test_twisted_fan_unsolvable(self, r):
        # solo decisions of processes 1 and 2 live on different strips,
        # which the split hub disconnects: Corollary 5.5 applies
        verdict = decide_solvability(fan_task(components=r, twisted=True))
        assert verdict.solvable is False
        assert verdict.obstruction.kind == "corollary-5.5"


class TestApproximateAgreement:
    """A solvable task that genuinely needs communication (r >= 1)."""

    def test_requires_one_round(self):
        from repro.tasks.zoo import approximate_agreement_task

        task = approximate_agreement_task(2)
        verdict = decide_solvability(task, max_rounds=1)
        assert verdict.solvable is True
        assert verdict.witness_rounds == 1

    def test_synthesized_protocol_runs(self):
        from repro.tasks.zoo import approximate_agreement_task

        task = approximate_agreement_task(2)
        protocol = synthesize_protocol(task, max_rounds=1)
        assert protocol.rounds >= 1  # zero-round protocols cannot solve it
        report = validate_protocol(
            task, protocol.factories, participation="facets", random_runs=4
        )
        assert report.ok, report.violations[:2]


class TestRandomTaskPipeline:
    @pytest.mark.parametrize("seed", range(6))
    def test_decided_solvables_synthesize_and_validate(self, seed):
        task = random_single_input_task(seed)
        verdict = decide_solvability(task, max_rounds=1)
        if verdict.status is not Status.SOLVABLE:
            pytest.skip("seed not solvable at this depth")
        protocol = synthesize_protocol(task, verdict=verdict)
        report = validate_protocol(task, protocol.factories, random_runs=5)
        assert report.ok, report.violations[:2]

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_figure7_path_on_random_solvables(self, seed):
        task = random_single_input_task(seed)
        verdict = decide_solvability(task, max_rounds=1)
        if verdict.status is not Status.SOLVABLE:
            pytest.skip("seed not solvable at this depth")
        protocol = synthesize_protocol(task, verdict=verdict, prefer_direct=False)
        report = validate_protocol(task, protocol.factories, random_runs=5)
        assert report.ok, report.violations[:2]


class TestCharacterizationTheorem:
    """Theorem 5.1 in executable form: a verdict's two sides are coherent."""

    @pytest.mark.parametrize("seed", range(8))
    def test_witness_implies_obstruction_free(self, seed):
        task = random_single_input_task(seed)
        verdict = decide_solvability(task, max_rounds=1)
        if verdict.status is Status.SOLVABLE:
            assert verdict.obstruction is None
        if verdict.status is Status.UNSOLVABLE:
            assert verdict.witness_map is None

    def test_identity_direct_equals_figure7(self):
        task = identity_task(3)
        direct = synthesize_protocol(task, prefer_direct=True)
        fig7 = synthesize_protocol(task, prefer_direct=False)
        assert validate_protocol(task, direct.factories, random_runs=3).ok
        assert validate_protocol(task, fig7.factories, random_runs=3).ok
