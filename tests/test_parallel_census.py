"""The parallel census engine must be scheduling-invariant.

Every aggregate a census reports is a deterministic function of the seed
set alone: worker counts, chunk sizes and completion order must all be
invisible.  Populations here are small (each seed is a full decision-
procedure run) but exercise every scheduling regime the engine has —
serial fallback, chunksize > 1, one chunk total, and a real pool.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import Census, parallel_census, run_census, sparse_census
from repro.analysis.parallel import adaptive_chunksize, parallel_sparse_census
from repro.tasks.zoo.random_tasks import random_sparse_task

SEEDS = range(10)


@pytest.fixture(scope="module")
def serial() -> Census:
    return run_census(SEEDS)


def test_same_seeds_same_aggregates(serial):
    par = parallel_census(SEEDS, workers=2, chunksize=3)
    assert par.as_tuple() == serial.as_tuple()
    # and a second parallel run is reproducible against the first
    again = parallel_census(SEEDS, workers=3, chunksize=2)
    assert again.as_tuple() == par.as_tuple()


def test_one_worker_degenerates_to_serial(serial):
    assert parallel_census(SEEDS, workers=1).as_tuple() == serial.as_tuple()


def test_chunksize_larger_than_population(serial):
    par = parallel_census(SEEDS, workers=4, chunksize=len(SEEDS) + 50)
    assert par.as_tuple() == serial.as_tuple()


def test_sparse_family_parity():
    serial = sparse_census(range(6))
    par = parallel_sparse_census(range(6), workers=2, chunksize=2)
    assert par.as_tuple() == serial.as_tuple()
    assert par.population == 6


def test_invalid_chunksize_rejected():
    with pytest.raises(ValueError):
        parallel_census(SEEDS, workers=2, chunksize=0)


def test_negative_chunksize_rejected():
    with pytest.raises(ValueError, match="chunksize must be at least 1, got -3"):
        parallel_census(SEEDS, workers=2, chunksize=-3)


@pytest.mark.parametrize("workers", [0, -1])
def test_nonpositive_workers_rejected(workers):
    # workers=0 used to silently mean "cpu count"; it is now an error
    # (None is the documented spelling for the default)
    with pytest.raises(ValueError, match="workers must be at least 1"):
        parallel_census(SEEDS, workers=workers)


def test_validation_precedes_generation():
    # bad knobs fail fast, before any task is generated or pool spawned
    def exploding_generator(seed):  # pragma: no cover - must never run
        raise AssertionError("generator should not be invoked")

    with pytest.raises(ValueError):
        parallel_census(SEEDS, generator=exploding_generator, workers=0)


def test_generator_parameter_is_respected():
    par = parallel_census(range(4), generator=random_sparse_task, workers=2, chunksize=1)
    assert par.as_tuple() == sparse_census(range(4)).as_tuple()


# -- Adaptive chunk sizing -----------------------------------------------------


class TestAdaptiveChunksize:
    def test_oversubscribed_uses_one_chunk_per_worker(self, monkeypatch):
        # workers >= cpu_count: no idle CPU can steal extra chunks, so the
        # population splits into exactly one contiguous chunk per worker
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert adaptive_chunksize(100, 4) == 25
        assert adaptive_chunksize(101, 4) == 26  # ceil, never drops a seed
        assert adaptive_chunksize(3, 8) == 1

    def test_undersubscribed_splits_fair_share_in_four(self, monkeypatch):
        # spare CPUs exist: each worker's fair share splits into ~4 chunks
        # so dynamic dispatch can rebalance uneven decision costs
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert adaptive_chunksize(100, 4) == 7  # ceil(ceil(100/4) / 4)
        assert adaptive_chunksize(8, 2) == 1  # floors at one seed per chunk

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError, match="empty population"):
            adaptive_chunksize(0, 2)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError, match="workers must be at least 1"):
            adaptive_chunksize(10, workers)

    def test_default_chunksize_is_adaptive_and_invisible(self, serial):
        # chunksize=None derives the adaptive size; aggregates are still
        # identical to the serial engine's
        par = parallel_census(SEEDS, workers=2, chunksize=None)
        assert par.as_tuple() == serial.as_tuple()


# -- Verdict-cache observability ----------------------------------------------


class TestVerdictCacheCounters:
    """Warm-store cache hits bypass the decide spans entirely; the explicit
    ``census.verdict_cache.*`` counters are what keeps traced throughput
    honest — and they must be scheduling-invariant like every aggregate."""

    @staticmethod
    def _counters(run, tmp_path, name):
        from repro import obs
        from repro.topology import diskstore

        with diskstore.store_at(str(tmp_path / name)):
            run_census(SEEDS)  # warm the store un-traced
            obs.reset_recorder()
            with obs.tracing():
                run()
            counters = dict(obs.get_recorder().aggregate_counters())
        return {k: v for k, v in counters.items() if k.startswith("census.verdict_cache")}

    def test_workers_1_equals_workers_n_on_warm_store(self, tmp_path):
        serial = self._counters(
            lambda: parallel_census(SEEDS, workers=1), tmp_path, "serial"
        )
        pooled = self._counters(
            lambda: parallel_census(SEEDS, workers=2, chunksize=3), tmp_path, "pooled"
        )
        assert serial == pooled
        assert serial["census.verdict_cache.hit"] == len(SEEDS)
        assert "census.verdict_cache.miss" not in serial

    def test_cold_store_counts_misses(self, tmp_path):
        from repro import obs
        from repro.topology import diskstore

        with diskstore.store_at(str(tmp_path / "cold")):
            obs.reset_recorder()
            with obs.tracing():
                run_census(range(3))
            counters = dict(obs.get_recorder().aggregate_counters())
        assert counters["census.verdict_cache.miss"] == 3
        assert "census.verdict_cache.hit" not in counters

    def test_disabled_store_emits_neither(self):
        from repro import obs
        from repro.topology import diskstore

        with diskstore.store_disabled():
            obs.reset_recorder()
            with obs.tracing():
                run_census(range(2))
            counters = dict(obs.get_recorder().aggregate_counters())
        assert not [k for k in counters if k.startswith("census.verdict_cache")]


# -- Census aggregation primitives the engine relies on ------------------------


def test_merge_is_commutative_and_associative():
    a = run_census(range(0, 3))
    b = run_census(range(3, 7))
    c = run_census(range(7, 10))
    left = Census().merge(a).merge(b).merge(c)
    right = Census().merge(c).merge(a).merge(b)
    assert left.as_tuple() == right.as_tuple() == run_census(SEEDS).as_tuple()


def test_rows_reports_witness_depth_histogram(serial):
    (row,) = serial.rows()
    assert "witness_depths" in row
    assert sum(row["witness_depths"].values()) == serial.solvable
    assert row["population"] == serial.population
