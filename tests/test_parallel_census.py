"""The parallel census engine must be scheduling-invariant.

Every aggregate a census reports is a deterministic function of the seed
set alone: worker counts, chunk sizes and completion order must all be
invisible.  Populations here are small (each seed is a full decision-
procedure run) but exercise every scheduling regime the engine has —
serial fallback, chunksize > 1, one chunk total, and a real pool.
"""

from __future__ import annotations

import pytest

from repro.analysis import Census, parallel_census, run_census, sparse_census
from repro.analysis.parallel import parallel_sparse_census
from repro.tasks.zoo.random_tasks import random_sparse_task

SEEDS = range(10)


@pytest.fixture(scope="module")
def serial() -> Census:
    return run_census(SEEDS)


def test_same_seeds_same_aggregates(serial):
    par = parallel_census(SEEDS, workers=2, chunksize=3)
    assert par.as_tuple() == serial.as_tuple()
    # and a second parallel run is reproducible against the first
    again = parallel_census(SEEDS, workers=3, chunksize=2)
    assert again.as_tuple() == par.as_tuple()


def test_one_worker_degenerates_to_serial(serial):
    assert parallel_census(SEEDS, workers=1).as_tuple() == serial.as_tuple()


def test_chunksize_larger_than_population(serial):
    par = parallel_census(SEEDS, workers=4, chunksize=len(SEEDS) + 50)
    assert par.as_tuple() == serial.as_tuple()


def test_sparse_family_parity():
    serial = sparse_census(range(6))
    par = parallel_sparse_census(range(6), workers=2, chunksize=2)
    assert par.as_tuple() == serial.as_tuple()
    assert par.population == 6


def test_invalid_chunksize_rejected():
    with pytest.raises(ValueError):
        parallel_census(SEEDS, workers=2, chunksize=0)


def test_negative_chunksize_rejected():
    with pytest.raises(ValueError, match="chunksize must be at least 1, got -3"):
        parallel_census(SEEDS, workers=2, chunksize=-3)


@pytest.mark.parametrize("workers", [0, -1])
def test_nonpositive_workers_rejected(workers):
    # workers=0 used to silently mean "cpu count"; it is now an error
    # (None is the documented spelling for the default)
    with pytest.raises(ValueError, match="workers must be at least 1"):
        parallel_census(SEEDS, workers=workers)


def test_validation_precedes_generation():
    # bad knobs fail fast, before any task is generated or pool spawned
    def exploding_generator(seed):  # pragma: no cover - must never run
        raise AssertionError("generator should not be invoked")

    with pytest.raises(ValueError):
        parallel_census(SEEDS, generator=exploding_generator, workers=0)


def test_generator_parameter_is_respected():
    par = parallel_census(range(4), generator=random_sparse_task, workers=2, chunksize=1)
    assert par.as_tuple() == sparse_census(range(4)).as_tuple()


# -- Census aggregation primitives the engine relies on ------------------------


def test_merge_is_commutative_and_associative():
    a = run_census(range(0, 3))
    b = run_census(range(3, 7))
    c = run_census(range(7, 10))
    left = Census().merge(a).merge(b).merge(c)
    right = Census().merge(c).merge(a).merge(b)
    assert left.as_tuple() == right.as_tuple() == run_census(SEEDS).as_tuple()


def test_rows_reports_witness_depth_histogram(serial):
    (row,) = serial.rows()
    assert "witness_depths" in row
    assert sum(row["witness_depths"].values()) == serial.solvable
    assert row["population"] == serial.population
