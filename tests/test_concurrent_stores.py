"""Concurrent writers against the persistent stores: no torn records.

The service runs the telemetry JSONL store and the verdict diskstore
from multiple threads (client workers, the server thread, pool workers),
so both must tolerate racing writers: every JSONL line must stay a
complete record, and a diskstore key raced by two writers must end up
wholly one value or wholly the other — never interleaved bytes.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.obs.store import append_run, load_store
from repro.service.cache import VerdictCache
from repro.service.protocol import make_response
from repro.topology import diskstore


def _run_record(i: int) -> dict:
    payload = obs.build_trace(meta={"command": "decide"})
    return obs.build_run_record(
        payload, command="decide", argv=["decide", "consensus"], task=f"t{i}"
    )


def _race(n_threads: int, work) -> list:
    """Run ``work(i)`` on n threads with a start barrier; returns errors."""
    barrier = threading.Barrier(n_threads)
    errors: list = []

    def runner(i: int) -> None:
        barrier.wait()
        try:
            work(i)
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestTelemetryStoreConcurrency:
    def test_parallel_append_run_leaves_no_torn_records(self, tmp_path):
        store_path = str(tmp_path / "telemetry.jsonl")
        n_threads, per_thread = 8, 5

        def work(i: int) -> None:
            for j in range(per_thread):
                append_run(_run_record(i * per_thread + j), store_path)

        assert _race(n_threads, work) == []
        records, problems = load_store(store_path)
        assert problems == []
        assert len(records) == n_threads * per_thread
        # every record round-tripped completely: distinct tasks all present
        tasks = {r["task"] for r in records}
        assert len(tasks) == n_threads * per_thread


class TestDiskstoreConcurrency:
    def test_racing_writers_same_key_leave_a_loadable_entry(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "store")):
            key = diskstore.content_hash("contended")
            n_threads = 8
            payloads = {i: {"writer": i, "blob": "x" * 4096} for i in range(n_threads)}

            def work(i: int) -> None:
                for _ in range(10):
                    diskstore.store("service", key, payloads[i])

            assert _race(n_threads, work) == []
            # atomic temp-file + os.replace: the survivor is exactly one
            # writer's payload, never a byte-interleaved hybrid
            final = diskstore.load("service", key)
            assert final in payloads.values()

    def test_racing_writers_distinct_keys_all_round_trip(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "store")):
            n_threads = 8

            def work(i: int) -> None:
                diskstore.store("service", f"{i:040x}", {"writer": i})

            assert _race(n_threads, work) == []
            for i in range(n_threads):
                assert diskstore.load("service", f"{i:040x}") == {"writer": i}


class TestVerdictCacheConcurrency:
    def test_racing_puts_and_gets_stay_consistent(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "store")):
            cache = VerdictCache()
            keys = [f"{i:040x}" for i in range(4)]
            responses = {
                k: make_response(k, "decide", verdict=None) for k in keys
            }

            def work(i: int) -> None:
                for _ in range(25):
                    k = keys[i % len(keys)]
                    cache.put(k, responses[k])
                    got = cache.get(k)
                    assert got is None or got == responses[k]

            assert _race(8, work) == []
            for k in keys:
                assert cache.get(k) == responses[k]
