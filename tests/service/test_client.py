"""The load-generator half of the client: workloads, percentiles."""

from __future__ import annotations

import pytest

from repro.service.client import (
    DEFAULT_SPEC_POOL,
    _split_url,
    make_workload,
    percentile,
    workload_duplication,
    zipf_weights,
)


class TestSplitUrl:
    def test_scheme_optional(self):
        assert _split_url("http://127.0.0.1:8642") == ("127.0.0.1", 8642)
        assert _split_url("127.0.0.1:8642/") == ("127.0.0.1", 8642)

    @pytest.mark.parametrize("bad", ["localhost", "http://", ":99", "a:b"])
    def test_malformed_urls_raise(self, bad):
        with pytest.raises(ValueError):
            _split_url(bad)


class TestWorkload:
    def test_seeded_streams_replay_identically(self):
        a = make_workload(50, seed=7)
        b = make_workload(50, seed=7)
        assert a == b
        assert make_workload(50, seed=8) != a

    def test_zipf_skew_produces_duplicate_heavy_traffic(self):
        stream = make_workload(120, seed=0)
        assert workload_duplication(stream) >= 10.0

    def test_specs_come_from_the_pool(self):
        stream = make_workload(30, pool=("consensus", "fork"), seed=0)
        assert {r["task"] for r in stream} <= {"consensus", "fork"}
        assert all(r["op"] == "decide" for r in stream)

    def test_default_pool_names_resolve(self):
        from repro.service.execution import ZOO

        assert set(DEFAULT_SPEC_POOL) <= set(ZOO)

    def test_zipf_weights_decrease(self):
        weights = zipf_weights(5, skew=1.2)
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0

    def test_empty_and_bounds(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 150)
