"""The two-level verdict cache: memory, diskstore, counters."""

from __future__ import annotations

from repro.obs import tracing
from repro.service.cache import NAMESPACE, VerdictCache
from repro.service.protocol import make_response
from repro.topology import diskstore


def _response(key: str, ok: bool = True):
    if ok:
        return make_response(
            key,
            "decide",
            verdict={
                "schema": "repro-verdict/1",
                "status": "unsolvable",
                "solvable": False,
                "task": "t",
                "n_processes": 3,
                "splits": 0,
                "certificate": {"kind": "none"},
            },
        )
    return make_response(key, "decide", error=("synthesis-error", "no"))


class TestMemoryLevel:
    def test_miss_then_hit(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "s")):
            cache = VerdictCache()
            key = "a" * 40
            assert cache.get(key) is None
            cache.put(key, _response(key))
            with tracing() as rec:
                before = rec.counters.get("service.cache.hit.memory", 0)
                assert cache.get(key) == _response(key)
                assert (
                    rec.counters.get("service.cache.hit.memory", 0)
                    == before + 1
                )
            stats = cache.stats()
            assert stats["hits_memory"] == 1
            assert stats["misses"] == 1
            assert stats["hit_rate"] == 0.5

    def test_failures_are_never_cached(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "s")):
            cache = VerdictCache()
            key = "b" * 40
            cache.put(key, _response(key, ok=False))
            assert cache.get(key) is None
            assert cache.stats()["entries"] == 0


class TestDiskLevel:
    def test_survives_a_fresh_instance(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "s")):
            key = "c" * 40
            VerdictCache().put(key, _response(key))
            fresh = VerdictCache()
            with tracing() as rec:
                disk_before = rec.counters.get("service.cache.hit.disk", 0)
                assert fresh.get(key) == _response(key)
                assert (
                    rec.counters.get("service.cache.hit.disk", 0)
                    == disk_before + 1
                )
                # promoted: second probe is a memory hit
                mem_before = rec.counters.get("service.cache.hit.memory", 0)
                fresh.get(key)
                assert (
                    rec.counters.get("service.cache.hit.memory", 0)
                    == mem_before + 1
                )

    def test_foreign_objects_under_the_namespace_are_misses(self, tmp_path):
        with diskstore.store_at(str(tmp_path / "s")):
            key = "d" * 40
            diskstore.store(NAMESPACE, key, {"not": "an envelope"})
            assert VerdictCache().get(key) is None

    def test_persist_false_never_touches_disk(self, tmp_path):
        store_dir = tmp_path / "s"
        with diskstore.store_at(str(store_dir)):
            cache = VerdictCache(persist=False)
            key = "e" * 40
            cache.put(key, _response(key))
            assert cache.get(key) == _response(key)
            assert not (store_dir / NAMESPACE).exists()
