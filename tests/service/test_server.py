"""End-to-end: the asyncio HTTP server, the client, CLI parity."""

from __future__ import annotations

import json

import pytest

from repro.service.client import ServiceClient, run_load
from repro.service.keys import canonical_dumps
from repro.service.protocol import validate_response
from repro.service.server import ServerConfig, ServerThread


@pytest.fixture(scope="module")
def server():
    """One shared in-process server (memory-only cache, thread pool)."""
    with ServerThread(ServerConfig(persist=False)) as st:
        yield st


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as c:
        yield c


class TestRoutes:
    def test_healthz(self, client):
        assert client.health() is True

    def test_unknown_route_is_404(self, client):
        status, payload = client._request("GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_is_405(self, client):
        status, _ = client._request("GET", "/v1/solve")
        assert status == 405

    def test_non_json_body_is_400(self, client):
        client._conn.request(
            "POST", "/v1/solve", body=b"{not json", headers={}
        )
        response = client._conn.getresponse()
        assert response.status == 400
        response.read()

    def test_protocol_error_is_400(self, client):
        status, payload = client._request(
            "POST", "/v1/solve", {"op": "meditate", "task": "consensus"}
        )
        assert status == 400
        assert "op" in payload["error"]

    def test_unknown_task_is_400(self, client):
        status, payload = client._request(
            "POST", "/v1/solve", {"op": "decide", "task": "not-a-task"}
        )
        assert status == 400
        assert "unknown task" in payload["error"]

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["requests"] >= 1
        assert "cache" in stats and "batch" in stats


class TestSolve:
    def test_decide_envelope_validates(self, client):
        response = client.decide("consensus")
        assert validate_response(response) == []
        assert response["verdict"]["status"] == "unsolvable"

    def test_second_request_is_served_from_cache(self, client):
        payload = {"op": "decide", "task": "2-set-agreement"}
        first = client.solve(payload)
        second = client.solve(payload)
        assert second["cached"] is True
        # identical modulo the cached flag
        assert dict(second, cached=False) == dict(first, cached=False)

    def test_spellings_converge_on_one_key(self, client):
        from repro.io import task_to_json
        from repro.service.execution import resolve_task

        by_name = client.decide("hourglass")
        by_json = client.decide(task_to_json(resolve_task("hourglass")))
        assert by_json["key"] == by_name["key"]
        assert by_json["cached"] is True
        assert by_json["verdict"] == by_name["verdict"]

    def test_expected_failure_is_an_ok_false_envelope_not_a_500(self, client):
        response = client.solve({"op": "synthesize", "task": "consensus"})
        assert response["ok"] is False
        assert response["error"]["kind"] == "synthesis-error"
        assert validate_response(response) == []

    def test_concurrent_duplicate_load(self, server):
        stream = [{"op": "decide", "task": "twisted-fan"}] * 20
        result = run_load(server.url, stream, concurrency=4)
        assert result.n_requests == 20
        assert result.error_count == 0
        # everything after the first computation is a hit or coalesced
        assert result.hit_rate >= 0.5


class TestCliParity:
    def test_cli_and_service_verdicts_are_bit_identical(
        self, server, tmp_path, capsys
    ):
        from repro.__main__ import main

        out = tmp_path / "verdict.json"
        assert main(["decide", "consensus", "--json", str(out)]) == 0
        capsys.readouterr()
        cli_verdict = json.loads(out.read_text())

        with ServiceClient(server.url) as client:
            served = client.decide("consensus")["verdict"]
        assert canonical_dumps(cli_verdict) == canonical_dumps(served)


class TestServerThread:
    def test_port_is_unavailable_before_start(self):
        st = ServerThread(ServerConfig(persist=False))
        with pytest.raises(RuntimeError):
            st.port

    def test_inline_pool_serves_requests(self):
        config = ServerConfig(persist=False, pool="inline", shards=1)
        with ServerThread(config) as st:
            with ServiceClient(st.url) as client:
                response = client.decide("fork")
                assert response["ok"] is True
