"""The sharded batch queue: batching, coalescing, error isolation."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.batch import BatchQueue, shard_of
from repro.service.cache import VerdictCache
from repro.service.protocol import make_response
from repro.topology import diskstore


def _backend_ok(payloads):
    return [
        make_response(p["key"], "decide", verdict=None) | {"n": p["n"]}
        for p in payloads
    ]


def _key(i: int) -> str:
    return f"{i:040x}"


class TestShardOf:
    def test_stable_and_in_range(self):
        for i in range(64):
            key = _key(i)
            assert shard_of(key, 4) == shard_of(key, 4)
            assert 0 <= shard_of(key, 4) < 4

    def test_single_shard_accepts_everything(self):
        assert shard_of(_key(123), 1) == 0


class TestBatching:
    def test_distinct_keys_resolve_positionally(self):
        calls = []

        def backend(payloads):
            calls.append(len(payloads))
            return _backend_ok(payloads)

        async def run():
            queue = BatchQueue(backend, None, shards=2, batch_size=8)
            await queue.start()
            results = await asyncio.gather(
                *(
                    queue.submit(_key(i), {"key": _key(i), "n": i})
                    for i in range(10)
                )
            )
            await queue.stop()
            return results

        results = asyncio.run(run())
        assert [r["n"] for r in results] == list(range(10))
        assert sum(calls) == 10
        assert len(calls) <= 10  # at least some batching happened

    def test_duplicate_keys_coalesce_onto_one_computation(self):
        executed = []

        def backend(payloads):
            executed.extend(p["key"] for p in payloads)
            return _backend_ok(payloads)

        async def run():
            queue = BatchQueue(backend, None, shards=1, batch_size=8)
            await queue.start()
            key = _key(7)
            results = await asyncio.gather(
                *(queue.submit(key, {"key": key, "n": 7}) for _ in range(6))
            )
            await queue.stop()
            return results

        results = asyncio.run(run())
        assert executed.count(_key(7)) == 1
        assert all(r == results[0] for r in results)

    def test_backend_defect_fails_the_batch_not_the_dispatcher(self):
        attempts = []

        def backend(payloads):
            attempts.append(list(payloads))
            if len(attempts) == 1:
                raise RuntimeError("worker blew up")
            return _backend_ok(payloads)

        async def run():
            queue = BatchQueue(backend, None, shards=1, batch_size=8)
            await queue.start()
            first = await queue.submit(_key(1), {"key": _key(1), "n": 1})
            # the dispatcher survived: a later submit still works
            second = await queue.submit(_key(2), {"key": _key(2), "n": 2})
            await queue.stop()
            return first, second

        first, second = asyncio.run(run())
        assert first["ok"] is False
        assert first["error"]["kind"] == "internal-error"
        assert "worker blew up" in first["error"]["message"]
        assert second["ok"] is True

    def test_responses_populate_the_cache(self, tmp_path):
        def backend(payloads):
            return [
                make_response(p["key"], "decide", verdict=None)
                for p in payloads
            ]

        async def run(cache):
            queue = BatchQueue(
                backend, None, shards=1, batch_size=4, cache=cache
            )
            await queue.start()
            await queue.submit(_key(3), {"key": _key(3), "n": 3})
            await queue.stop()

        with diskstore.store_at(str(tmp_path / "s")):
            cache = VerdictCache(persist=False)
            asyncio.run(run(cache))
            assert cache.get(_key(3)) is not None

    def test_constructor_validates_shape(self):
        with pytest.raises(ValueError):
            BatchQueue(_backend_ok, None, shards=0)
        with pytest.raises(ValueError):
            BatchQueue(_backend_ok, None, batch_size=0)
