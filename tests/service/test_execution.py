"""The shared request/response layer: outcomes, exit codes, failures."""

from __future__ import annotations

import pytest

from repro.io import save_task
from repro.runtime import SynthesisError
from repro.service import execution
from repro.service.protocol import (
    ProtocolError,
    ServiceRequest,
    validate_response,
)


class TestResolveTask:
    def test_zoo_name(self):
        task = execution.resolve_task("consensus")
        assert task.n_processes == 3

    def test_json_file(self, tmp_path):
        path = str(tmp_path / "task.json")
        save_task(execution.ZOO["consensus"](), path)
        task = execution.resolve_task(path)
        assert task.n_processes == 3

    def test_unknown_name_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown task"):
            execution.resolve_task("not-a-task")

    def test_unreadable_file_is_a_protocol_error(self, tmp_path):
        missing = str(tmp_path / "missing.json")
        with pytest.raises(ProtocolError, match="cannot load"):
            execution.resolve_task(missing)


class TestDecideOutcomes:
    def test_unsolvable_exits_zero(self):
        outcome = execution.execute_request(
            ServiceRequest(op="decide", task="consensus")
        )
        assert outcome.exit_code == 0
        assert outcome.response["ok"] is True
        assert outcome.response["verdict"]["status"] == "unsolvable"
        assert validate_response(outcome.response) == []

    def test_unknown_exits_two(self):
        # zero rounds starves the witness search on a solvable-ish task
        outcome = execution.execute_request(
            ServiceRequest(
                op="decide", task="pinwheel", params={"max_rounds": 0}
            )
        )
        if outcome.response["verdict"]["status"] == "unknown":
            assert outcome.exit_code == 2
        else:  # decided even at r=0 — exit convention still holds
            assert outcome.exit_code == 0

    def test_same_request_same_response(self):
        req = ServiceRequest(op="decide", task="consensus")
        first = execution.execute_request(req).response
        second = execution.execute_request(req).response
        assert first == second


class TestAnalyzeOutcomes:
    def test_analysis_payload(self):
        outcome = execution.execute_request(
            ServiceRequest(op="analyze", task="consensus")
        )
        assert outcome.exit_code == 0
        analysis = outcome.response["analysis"]
        assert set(analysis) == {"splits", "laps", "o_prime_components"}
        assert outcome.report is not None


class TestSynthesizeOutcomes:
    def test_solvable_task_synthesizes(self):
        outcome = execution.execute_request(
            ServiceRequest(
                op="synthesize", task="identity", params={"runs": 2}
            )
        )
        assert outcome.exit_code == 0
        assert outcome.response["synthesis"]["ok"] is True
        assert outcome.protocol is not None

    def test_expected_failure_becomes_ok_false(self):
        # consensus is unsolvable: SynthesisError is a documented failure
        outcome = execution.execute_request(
            ServiceRequest(op="synthesize", task="consensus")
        )
        assert outcome.exit_code == 1
        assert outcome.response["ok"] is False
        assert outcome.response["error"]["kind"] == "synthesis-error"
        assert validate_response(outcome.response) == []

    def test_programming_errors_propagate(self, monkeypatch):
        # the old CLI's bare `except Exception` swallowed these; the
        # shared layer must let them out with the traceback intact
        def broken(*args, **kwargs):
            raise TypeError("a genuine bug, not a failure mode")

        monkeypatch.setattr(execution, "synthesize_protocol", broken)
        with pytest.raises(TypeError, match="genuine bug"):
            execution.execute_request(
                ServiceRequest(op="synthesize", task="identity")
            )

    def test_expected_failures_cover_the_documented_trio(self):
        from repro.check.preflight import PreflightError
        from repro.solvability import SearchBudgetExceeded

        assert set(execution.EXPECTED_FAILURES) == {
            SynthesisError,
            SearchBudgetExceeded,
            PreflightError,
        }


class TestExecutePayload:
    def test_well_formed_payload_round_trips(self):
        response = execution.execute_payload(
            {"op": "decide", "task": "consensus"}
        )
        assert response["ok"] is True
        assert validate_response(response) == []

    def test_malformed_payload_becomes_protocol_error_response(self):
        response = execution.execute_payload({"op": "meditate"})
        assert response["ok"] is False
        assert response["error"]["kind"] == "protocol-error"
        assert validate_response(response) == []

    def test_unknown_task_becomes_protocol_error_response(self):
        response = execution.execute_payload(
            {"op": "decide", "task": "not-a-task"}
        )
        assert response["ok"] is False
        assert response["error"]["kind"] == "protocol-error"


class TestExitCodeConvention:
    @pytest.mark.parametrize(
        "response,code",
        [
            ({"ok": False}, 1),
            ({"ok": True, "verdict": {"status": "unknown"}}, 2),
            ({"ok": True, "verdict": {"status": "unsolvable"}}, 0),
            ({"ok": True, "synthesis": {"ok": False}}, 1),
            ({"ok": True, "synthesis": {"ok": True}}, 0),
        ],
    )
    def test_mapping(self, response, code):
        assert execution.response_exit_code(response) == code
