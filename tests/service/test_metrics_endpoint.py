"""End-to-end tests for ``GET /metrics`` on the verdict server.

Pins the acceptance gates: the text variant parses as Prometheus
exposition, the JSON variant validates as ``repro-metrics/1`` and both
are renderings of the same instruments; per-op and per-cache-tier
histograms appear after traffic; and concurrent scrapes during load
never fail while their counters stay monotone and bracket the load.
"""

import threading

import pytest

from repro.obs.metrics import (
    metrics_from_json,
    parse_prometheus_text,
    prometheus_text,
    validate_metrics,
)
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig, ServerThread


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(persist=False, sample_interval=0.2)) as st:
        yield st


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as c:
        yield c


class TestMetricsEndpoint:
    def test_text_variant_parses_as_prometheus(self, client):
        client.decide("consensus")
        samples = parse_prometheus_text(client.metrics_text())
        assert samples  # non-empty and every line well-formed
        assert any(k.startswith("repro_uptime_seconds") for k in samples)

    def test_json_variant_validates_and_matches_the_text(self, client):
        client.decide("consensus")
        snapshot = client.metrics()  # client validates repro-metrics/1
        # the JSON variant renders to legal exposition too: same
        # instruments, one snapshot apart
        rendered = parse_prometheus_text(prometheus_text(snapshot))
        assert set(rendered) <= set(parse_prometheus_text(client.metrics_text()))

    def test_per_op_histogram_appears_after_traffic(self, client):
        client.decide("consensus")
        snapshot = client.metrics()
        ops = {
            h["labels"].get("op")
            for h in snapshot["histograms"]
            if h["name"] == "request_latency_seconds"
        }
        assert "decide" in ops
        assert "metrics" in ops  # the scrape itself is observed
        assert not any(op and "?" in op for op in ops)  # no query leakage

    def test_cache_tier_histogram_distinguishes_hit_from_miss(self, client):
        payload = {"op": "decide", "task": "hourglass"}
        client.solve(payload)  # miss (or coalesced)
        client.solve(payload)  # memory hit
        snapshot = client.metrics()
        tiers = {
            h["labels"].get("tier"): h["count"]
            for h in snapshot["histograms"]
            if h["name"] == "tier_latency_seconds"
        }
        assert tiers.get("memory", 0) >= 1
        assert tiers.get("miss", 0) >= 1

    def test_gauges_report_live_server_state(self, client):
        client.decide("consensus")
        gauges = {g["name"]: g["value"] for g in client.metrics()["gauges"]}
        assert gauges["uptime_seconds"] > 0.0
        assert gauges["keymap_entries"] >= 1.0
        assert gauges["cache_memory_entries"] >= 1.0
        assert gauges["rss_bytes"] > 1 << 20

    def test_resource_ring_rides_in_the_snapshot(self, client, server):
        # sample_interval=0.2 -> the t=0 anchor is always there
        resources = client.metrics().get("resources")
        assert resources is not None
        assert resources["samples"]
        assert "rss_bytes" in resources["samples"][0]["values"]
        assert "cache_memory_bytes" in resources["names"]

    def test_post_is_405(self, client):
        status, payload = client._request("POST", "/metrics", {})
        assert status == 405
        assert "error" in payload

    def test_error_responses_are_counted(self, client):
        client._request("GET", "/nope")
        snapshot = client.metrics()
        statuses = {
            c["labels"].get("status"): c["value"]
            for c in snapshot["counters"]
            if c["name"] == "http_responses"
        }
        assert statuses.get("404", 0) >= 1


class TestConcurrentScrapes:
    def test_scrapes_during_load_never_fail_and_counts_bracket(self, server):
        """The satellite gate: thread-safe recording under concurrency.

        Scrapers hammer both /metrics variants while solvers drive
        load.  No scrape may 500 or fail validation, every scraper's
        request-count sequence must be monotone, and the final count
        must bracket the load (>= before + solves issued).
        """
        with ServiceClient(server.url) as probe:
            probe.decide("consensus")  # warm the cache so load is fast
            before = self._request_count(probe.metrics())
        n_solves = 40
        errors = []
        counts_per_scraper = [[] for _ in range(3)]
        stop = threading.Event()

        def solver():
            with ServiceClient(server.url) as c:
                for _ in range(n_solves // 2):
                    response = c.decide("consensus")
                    if not response.get("ok"):
                        errors.append("solve not ok")

        def scraper(slot):
            with ServiceClient(server.url) as c:
                while not stop.is_set():
                    try:
                        snapshot = c.metrics()  # validates, raises on 500
                        parse_prometheus_text(c.metrics_text())
                    except Exception as exc:
                        errors.append(f"scrape failed: {exc!r}")
                        return
                    counts_per_scraper[slot].append(
                        self._request_count(snapshot)
                    )

        solvers = [threading.Thread(target=solver) for _ in range(2)]
        scrapers = [
            threading.Thread(target=scraper, args=(slot,)) for slot in range(3)
        ]
        for t in scrapers + solvers:
            t.start()
        for t in solvers:
            t.join()
        stop.set()
        for t in scrapers:
            t.join()

        assert errors == []
        for counts in counts_per_scraper:
            assert counts, "scraper never completed a scrape"
            assert counts == sorted(counts)  # monotone under concurrency
        with ServiceClient(server.url) as probe:
            after = self._request_count(probe.metrics())
        assert after >= before + n_solves

    @staticmethod
    def _request_count(snapshot):
        assert validate_metrics(snapshot) == []
        for meter in snapshot["meters"]:
            if meter["name"] == "requests":
                return meter["count"]
        return 0

    def test_json_snapshot_round_trips_under_load(self, server):
        import json

        with ServiceClient(server.url) as c:
            c.decide("consensus")
            snapshot = c.metrics()
        assert prometheus_text(
            metrics_from_json(json.dumps(snapshot))
        ) == prometheus_text(snapshot)
