"""The growth-gated soak harness, its report schema, and CLI exit codes.

One short in-process soak per scenario (seconds, not the 20s default)
exercises the full pipeline: load workers, periodic ``/metrics``
scrapes, slope fitting over the server's resource ring, budget gating,
and the ``repro obs ingest`` path that turns a soak report into a
trendable run record.  The acceptance pair — exit 0 under budget,
exit 1 over — runs through the real CLI.
"""

import json

import pytest

from repro.obs import format_trend, load_record_file, validate_run_record
from repro.obs.store import soak_run_record
from repro.service.server import ServerConfig
from repro.service.soak import (
    SoakBudgets,
    format_soak_summary,
    run_soak,
    validate_soak_report,
)

#: fast in-process server for soak tests: no disk, no worker pool hop
FAST = dict(
    server_config=ServerConfig(
        persist=False, pool="inline", shards=1, sample_interval=0.2
    ),
    duration=2.5,
    concurrency=2,
    requests=40,
    pool_size=3,
    scrape_interval=0.5,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One shared soak run; scenarios re-gate its slopes offline."""
    scrapes = tmp_path_factory.mktemp("soak") / "scrapes.jsonl"
    return run_soak(scrapes_path=str(scrapes), **FAST), scrapes


class TestRunSoak:
    def test_report_is_valid_and_passed_without_budgets(self, report):
        doc, _ = report
        assert validate_soak_report(doc) == []
        assert doc["passed"] is True and doc["over_budget"] == []
        assert doc["requests"] > 0 and doc["errors"] == 0
        assert doc["hit_rate"] > 0.5  # 3 distinct specs, duplicate-heavy
        assert doc["latency"]["count"] == doc["requests"]

    def test_scrapes_happened_and_were_persisted(self, report):
        doc, scrapes = report
        assert doc["scrapes"] >= 1 and doc["scrape_failures"] == 0
        lines = scrapes.read_text().strip().splitlines()
        assert len(lines) == doc["scrapes"]
        assert json.loads(lines[0])["schema"] == "repro-metrics/1"

    def test_slopes_cover_the_gated_series(self, report):
        doc, _ = report
        for series in ("rss_bytes", "keymap_entries", "cache_memory_entries"):
            assert series in doc["slopes"]
        assert doc["resources"]["samples"]  # the ring made it out

    def test_negative_budget_always_trips(self, report):
        # keymap entries never shrink, so the slope is >= 0 and a
        # negative ceiling must gate — the exit-1 canary trick
        doc, _ = report
        budgets = SoakBudgets(keymap_entries_per_s=-1.0)
        problems = budgets.violations(doc["slopes"])
        assert len(problems) == 1
        assert "keymap_entries_per_s" in problems[0]

    def test_generous_budgets_pass(self, report):
        doc, _ = report
        budgets = SoakBudgets(
            rss_bytes_per_s=1 << 30,
            keymap_entries_per_s=1e6,
            cache_entries_per_s=1e6,
        )
        assert budgets.violations(doc["slopes"]) == []

    def test_missing_series_is_a_violation_not_a_pass(self):
        budgets = SoakBudgets(rss_bytes_per_s=100.0)
        problems = budgets.violations({})
        assert problems and "no 'rss_bytes' series" in problems[0]

    def test_summary_renders_the_verdict(self, report):
        doc, _ = report
        text = format_soak_summary(doc)
        assert "growth within budget" in text
        assert "rss_bytes" in text

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            run_soak(duration=0.0)
        with pytest.raises(ValueError):
            run_soak(duration=1.0, scrape_interval=0.0)


class TestValidateSoakReport:
    def test_rejects_non_object_and_wrong_schema(self):
        assert validate_soak_report([]) != []
        assert any(
            "schema" in p for p in validate_soak_report({"schema": "x"})
        )

    def test_rejects_passed_over_budget_disagreement(self, report):
        doc, _ = report
        bad = dict(doc, passed=False)
        assert any("agree" in p for p in validate_soak_report(bad))


class TestSoakIngest:
    def test_report_condenses_to_a_valid_run_record(self, report):
        doc, _ = report
        record = soak_run_record(doc, source="soak.json")
        assert validate_run_record(record) == []
        assert record["command"] == "serve-soak"
        assert record["counters"]["soak.requests"] == doc["requests"]
        assert record["gauges"]["soak.slope.rss_bytes"] == pytest.approx(
            doc["slopes"]["rss_bytes"]
        )
        assert record["gauges"]["soak.passed"] == 1.0
        assert record["meta"]["source"] == "soak.json"

    def test_load_record_file_auto_converts_soak_reports(self, report, tmp_path):
        doc, _ = report
        path = tmp_path / "soak.json"
        path.write_text(json.dumps(doc))
        record = load_record_file(str(path))
        assert record["schema"] == "repro-run/1"
        assert record["command"] == "serve-soak"

    def test_trend_renders_soak_records(self, report):
        # the record carries a "histograms" rider outside the trend
        # vocabulary — rendering must skip it, not crash (the
        # forward-compat satellite, exercised end to end)
        doc, _ = report
        record = soak_run_record(doc)
        text = format_trend([record])
        assert "soak.requests" in text
        assert "soak_latency" not in text


class TestCliExitCodes:
    _BASE = [
        "serve-soak",
        "--duration", "2",
        "--concurrency", "2",
        "--requests", "40",
        "--pool-size", "3",
        "--scrape-interval", "0.5",
        "--sample-interval", "0.2",
        "--pool", "inline",
        "--shards", "1",
        "--no-persist",
    ]

    def test_under_budget_exits_zero_and_writes_the_report(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        out = tmp_path / "soak.json"
        code = main(
            self._BASE
            + [
                "--max-rss-growth", str(1 << 30),
                "--max-keymap-growth", "1e6",
                "--max-cache-growth", "1e6",
                "--out", str(out),
            ]
        )
        stdout = capsys.readouterr().out
        assert code == 0
        assert "growth within budget" in stdout
        assert validate_soak_report(json.loads(out.read_text())) == []

    def test_over_budget_exits_one_with_a_gate_line(self, capsys):
        from repro.__main__ import main

        code = main(self._BASE + ["--max-keymap-growth", "-1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "OVER BUDGET" in captured.out
        assert "GATE: keymap_entries_per_s" in captured.err
