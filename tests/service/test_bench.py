"""The service bench: report schema, gates, replay files."""

from __future__ import annotations

import json

import pytest

from repro.perf import validate_report
from repro.service.bench import (
    check_gates,
    format_summary,
    load_replay_file,
    run_service_bench,
)
from repro.service.server import ServerConfig


@pytest.fixture(scope="module")
def bench_result(tmp_path_factory):
    """One small but real bench run shared by the assertions below.

    Module-scoped, so the env isolation has to be manual: the autouse
    function-scoped tower-store fixture has not run yet when this one
    is instantiated.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv(
            "REPRO_TOWER_CACHE", str(tmp_path_factory.mktemp("towers"))
        )
        return run_service_bench(
            requests=30,
            concurrency=2,
            pool_size=2,
            seed=0,
            passes=2,
            server_config=ServerConfig(persist=False, shards=1),
        )


class TestBenchRun:
    def test_report_is_valid_repro_perf(self, bench_result):
        assert validate_report(bench_result["report"]) == []

    def test_two_passes_measured(self, bench_result):
        names = [m["name"] for m in bench_result["report"]["results"]]
        assert "pass_0_cold" in names
        assert "pass_1_steady" in names
        assert "uncached_decide" in names
        assert "cached_hit" in names

    def test_steady_state_is_all_hits(self, bench_result):
        derived = bench_result["report"]["derived"]
        assert derived["steady_hit_rate"] == 1.0
        assert derived["workload_duplication"] >= 10.0
        assert derived["speedup:cached_hit/uncached_decide"] > 1.0

    def test_summary_mentions_the_headline_numbers(self, bench_result):
        text = format_summary(bench_result)
        assert "hit rate" in text
        assert "duplication" in text

    def test_gates(self, bench_result):
        assert check_gates(bench_result, min_hit_rate=0.9) == []
        assert check_gates(bench_result, min_hit_rate=1.1) != []
        assert check_gates(bench_result, max_p99_ms=0.0) != []

    def test_harness_report_writes(self, bench_result, tmp_path):
        out = tmp_path / "BENCH_service.json"
        bench_result["harness"].write(str(out))
        assert validate_report(json.loads(out.read_text())) == []


class TestReplayFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        stream = [{"op": "decide", "task": "fork"}] * 3
        path.write_text(
            "\n".join(json.dumps(r) for r in stream) + "\n", encoding="utf-8"
        )
        assert load_replay_file(str(path)) == stream

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"op": "decide"}\n\n\n', encoding="utf-8")
        assert len(load_replay_file(str(path))) == 1

    def test_malformed_lines_raise_with_location(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"op": "decide"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            load_replay_file(str(path))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="no requests"):
            load_replay_file(str(path))
