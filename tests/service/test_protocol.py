"""The repro-service/1 protocol: parsing, canonicalization, envelopes."""

from __future__ import annotations

import pytest

from repro.io import task_to_json
from repro.service.execution import ZOO, resolve_task
from repro.service.protocol import (
    OP_DEFAULTS,
    ProtocolError,
    SCHEMA,
    ServiceRequest,
    VERDICT_SCHEMA,
    make_response,
    parse_request,
    request_key,
    validate_response,
    verdict_to_json,
)
from repro.solvability import decide_solvability


class TestParseRequest:
    def test_minimal_decide(self):
        req = parse_request({"op": "decide", "task": "consensus"})
        assert req.op == "decide"
        assert req.task == "consensus"
        assert req.merged_params() == OP_DEFAULTS["decide"]

    def test_params_overlay_defaults(self):
        req = parse_request(
            {"op": "decide", "task": "consensus", "params": {"max_rounds": 1}}
        )
        assert req.merged_params()["max_rounds"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {},
            {"op": "meditate", "task": "consensus"},
            {"op": "decide"},
            {"op": "decide", "task": ""},
            {"op": "decide", "task": 7},
            {"op": "decide", "task": "consensus", "params": [1]},
            {"op": "decide", "task": "consensus", "params": {"bogus": 1}},
            {"op": "decide", "task": "consensus", "params": {"max_rounds": "2"}},
            {"op": "decide", "task": "consensus", "params": {"max_rounds": True}},
            {"op": "decide", "task": "consensus", "params": {"max_rounds": -1}},
            {"op": "synthesize", "task": "fan", "params": {"figure7": 1}},
        ],
    )
    def test_malformed_requests_raise(self, payload):
        with pytest.raises(ProtocolError):
            parse_request(payload)

    def test_op_specific_params_are_rejected_cross_op(self):
        # runs belongs to synthesize, not decide
        with pytest.raises(ProtocolError):
            parse_request(
                {"op": "decide", "task": "consensus", "params": {"runs": 5}}
            )


class TestRequestKey:
    def test_zoo_name_and_task_json_hash_identically(self):
        name_req = parse_request({"op": "decide", "task": "consensus"})
        task = resolve_task("consensus")
        json_req = parse_request(
            {"op": "decide", "task": task_to_json(task)}
        )
        key_by_name = request_key(name_req, resolve_task(name_req.task))
        key_by_json = request_key(json_req, resolve_task(json_req.task))
        assert key_by_name == key_by_json

    def test_explicit_defaults_hash_like_omitted_defaults(self):
        task = resolve_task("consensus")
        bare = ServiceRequest(op="decide", task="consensus")
        spelled = ServiceRequest(
            op="decide", task="consensus", params={"max_rounds": 2}
        )
        assert request_key(bare, task) == request_key(spelled, task)

    def test_different_params_hash_differently(self):
        task = resolve_task("consensus")
        r1 = ServiceRequest(op="decide", task="consensus")
        r2 = ServiceRequest(
            op="decide", task="consensus", params={"max_rounds": 1}
        )
        assert request_key(r1, task) != request_key(r2, task)

    def test_different_ops_hash_differently(self):
        task = resolve_task("consensus")
        decide = ServiceRequest(op="decide", task="consensus")
        analyze = ServiceRequest(op="analyze", task="consensus")
        assert request_key(decide, task) != request_key(analyze, task)


class TestVerdictJson:
    def test_unsolvable_carries_obstruction_certificate(self):
        verdict = decide_solvability(ZOO["consensus"]())
        payload = verdict_to_json(verdict)
        assert payload["schema"] == VERDICT_SCHEMA
        assert payload["status"] == "unsolvable"
        assert payload["solvable"] is False
        assert payload["certificate"]["kind"] == "obstruction"
        assert payload["certificate"]["obstruction"]

    def test_solvable_carries_witness_certificate(self):
        verdict = decide_solvability(ZOO["identity"]())
        payload = verdict_to_json(verdict)
        assert payload["status"] == "solvable"
        assert payload["certificate"]["kind"] in (
            "witness-map",
            "proposition-5.4",
        )

    def test_no_timing_noise_in_verdict_json(self):
        # run twice: identical bytes (stats carry wall-clock noise and
        # must not leak into the document)
        first = verdict_to_json(decide_solvability(ZOO["consensus"]()))
        second = verdict_to_json(decide_solvability(ZOO["consensus"]()))
        assert first == second
        assert "stats" not in first
        assert not any("second" in k for k in first)


class TestResponseEnvelope:
    def test_success_envelope_validates(self):
        verdict = verdict_to_json(decide_solvability(ZOO["consensus"]()))
        response = make_response("k" * 40, "decide", verdict=verdict)
        assert response["schema"] == SCHEMA
        assert response["ok"] is True
        assert response["cached"] is False
        assert validate_response(response) == []

    def test_error_envelope_validates(self):
        response = make_response(
            "k" * 40, "synthesize", error=("synthesis-error", "unsolvable")
        )
        assert response["ok"] is False
        assert validate_response(response) == []

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "repro-service/0"},
            {"key": ""},
            {"op": "meditate"},
            {"ok": "yes"},
            {"cached": None},
            {"verdict": {"schema": "bogus"}},
        ],
    )
    def test_validate_response_catches_drift(self, mutation):
        verdict = verdict_to_json(decide_solvability(ZOO["consensus"]()))
        response = make_response("k" * 40, "decide", verdict=verdict)
        response.update(mutation)
        assert validate_response(response) != []

    def test_failed_response_needs_an_error_object(self):
        response = make_response(
            "k" * 40, "decide", error=("protocol-error", "bad")
        )
        del response["error"]
        assert validate_response(response) != []
