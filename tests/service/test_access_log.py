"""The structured access log, request ids, and the log/trace join.

Covers :mod:`repro.service.accesslog` as a unit (line shape, strict
reader) and wired into the server: every completed request logs one
line, solve lines carry the content-derived request id whose prefix is
the cache key, and — the satellite gate — the same id appears on the
``service.batch`` span's ``request_ids`` attribute, making access-log
lines joinable to the trace that computed them.
"""

import json

import pytest

from repro import obs
from repro.service.accesslog import (
    ACCESS_LOG_FIELDS,
    AccessLog,
    read_access_log,
    validate_access_line,
)
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig, ServerThread


class TestAccessLogUnit:
    def test_write_emits_every_field(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with AccessLog(path) as log:
            log.write(
                request_id="abc.000001",
                method="POST",
                path="/v1/solve",
                status=200,
                latency_seconds=0.0021,
                op="decide",
                key_prefix="abc",
                cache_tier="memory",
                coalesced=False,
            )
        (line,) = read_access_log(path)
        assert set(line) == set(ACCESS_LOG_FIELDS)
        assert line["ok"] is True
        assert line["latency_ms"] == pytest.approx(2.1)
        assert line["queue_wait_ms"] is None  # absent facts stay null

    def test_error_status_logs_ok_false(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with AccessLog(path) as log:
            log.write(
                request_id="x.000001",
                method="GET",
                path="/nope",
                status=404,
                latency_seconds=0.001,
            )
        (line,) = read_access_log(path)
        assert line["ok"] is False and line["status"] == 404

    def test_validate_rejects_malformed_lines(self):
        assert validate_access_line("not a dict")
        assert any(
            "request_id" in p for p in validate_access_line({"t": 1.0})
        )
        full = {field: 1 for field in ACCESS_LOG_FIELDS}
        full.update(status=True, latency_ms="slow")
        problems = validate_access_line(full)
        assert any("status" in p for p in problems)
        assert any("latency_ms" in p for p in problems)

    def test_strict_reader_raises_on_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_access_log(str(path))
        path.write_text('{"t": 1.0}\n')
        with pytest.raises(ValueError, match="request_id"):
            read_access_log(str(path))
        assert read_access_log(str(path), strict=False) == []


@pytest.fixture()
def logged_server(tmp_path):
    path = str(tmp_path / "access.jsonl")
    config = ServerConfig(
        persist=False, pool="inline", shards=1, access_log=path
    )
    with ServerThread(config) as st:
        yield st, path


class TestServerAccessLog:
    def test_every_request_logs_one_valid_line(self, logged_server):
        server, path = logged_server
        with ServiceClient(server.url) as client:
            client.health()
            client.decide("consensus")
            client._request("GET", "/nope")
        lines = read_access_log(path)  # strict: every line validates
        assert [l["path"] for l in lines] == ["/healthz", "/v1/solve", "/nope"]
        assert [l["status"] for l in lines] == [200, 200, 404]
        assert len({l["request_id"] for l in lines}) == 3

    def test_solve_lines_carry_the_dispatch_facts(self, logged_server):
        server, path = logged_server
        payload = {"op": "decide", "task": "hourglass"}
        with ServiceClient(server.url) as client:
            client.solve(payload)
            client.solve(payload)
        miss, hit = read_access_log(path)
        assert miss["op"] == hit["op"] == "decide"
        # the id prefix IS the cache key prefix — greppable into the store
        assert miss["key_prefix"] == hit["key_prefix"]
        assert len(miss["key_prefix"]) == 12
        assert miss["request_id"].startswith(miss["key_prefix"] + ".")
        assert miss["request_id"] != hit["request_id"]
        # miss went through the batch queue; hit never did
        assert miss["cache_tier"] is None
        assert miss["batch_size"] == 1
        assert miss["queue_wait_ms"] >= 0.0
        assert miss["coalesced"] is False
        assert hit["cache_tier"] == "memory"
        assert hit["batch_size"] is None

    def test_non_solve_lines_leave_solve_fields_null(self, logged_server):
        server, path = logged_server
        with ServiceClient(server.url) as client:
            client.health()
        (line,) = read_access_log(path)
        assert line["op"] is None
        assert line["key_prefix"] is None
        assert line["cache_tier"] is None


class TestLogTraceJoin:
    def test_request_id_appears_in_both_access_log_and_span(self, tmp_path):
        """The satellite gate: one id joins the log line to the span tree."""
        path = str(tmp_path / "access.jsonl")
        config = ServerConfig(
            persist=False, pool="inline", shards=1, access_log=path
        )
        obs.reset_recorder()
        obs.set_tracing(True)
        try:
            with ServerThread(config) as server:
                with ServiceClient(server.url) as client:
                    client.decide("2-set-agreement")
            trace = obs.build_trace()
        finally:
            obs.set_tracing(False)
            obs.reset_recorder()

        (line,) = [
            l for l in read_access_log(path) if l["path"] == "/v1/solve"
        ]
        spans = self._flatten(trace["spans"])
        batch_ids = [
            s["attrs"]["request_ids"]
            for s in spans
            if s["name"] == "service.batch"
        ]
        assert batch_ids, "no service.batch span was recorded"
        joined = ",".join(batch_ids).split(",")
        assert line["request_id"] in joined

    @staticmethod
    def _flatten(spans):
        flat = []
        for span in spans:
            flat.append(span)
            flat.extend(TestLogTraceJoin._flatten(span.get("children", [])))
        return flat
