"""The shared hashing module: byte-stability is the whole contract.

Committed corpus manifests embed :func:`content_hash` digests and
historical telemetry stores embed :func:`record_id` run ids, so these
tests pin exact output bytes, not just self-consistency.
"""

from __future__ import annotations

import hashlib

from repro.service.keys import (
    DEFAULT_KEY_LENGTH,
    RUN_ID_LENGTH,
    canonical_dumps,
    content_hash,
    json_hash,
    record_id,
)


class TestContentHash:
    def test_is_truncated_sha256(self):
        text = "in:<(0:0), (1:0)>\nout:<(0:1)>"
        expected = hashlib.sha256(text.encode("utf-8")).hexdigest()[:40]
        assert content_hash(text) == expected
        assert len(content_hash(text)) == DEFAULT_KEY_LENGTH

    def test_pinned_digest(self):
        # a literal golden value: if this moves, every committed corpus
        # manifest and tower-store directory key silently invalidates
        assert content_hash("repro") == (
            "681d1638f10411fb29eb810a9184e68742579702"
        )

    def test_length_parameter(self):
        assert len(content_hash("x", length=12)) == 12
        assert content_hash("x", length=12) == content_hash("x")[:12]


class TestCanonicalDumps:
    def test_key_order_is_irrelevant(self):
        assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps(
            {"a": 2, "b": 1}
        )

    def test_non_json_values_fall_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd-thing"

        assert '"odd-thing"' in canonical_dumps({"v": Odd()})

    def test_json_hash_is_hash_of_canonical_text(self):
        payload = {"op": "decide", "params": {"max_rounds": 2}}
        assert json_hash(payload) == content_hash(canonical_dumps(payload))


class TestRecordId:
    def test_matches_telemetry_run_id_derivation(self):
        # the historical _run_id semantics: hash the record body minus
        # the run_id field itself, truncated to 12 chars
        record = {"command": "decide", "task": "consensus", "run_id": "xxx"}
        body = {k: v for k, v in record.items() if k != "run_id"}
        assert record_id(record) == json_hash(body, length=RUN_ID_LENGTH)
        assert len(record_id(record)) == RUN_ID_LENGTH

    def test_id_field_does_not_feed_back(self):
        a = {"command": "decide", "run_id": "aaa"}
        b = {"command": "decide", "run_id": "bbb"}
        assert record_id(a) == record_id(b)

    def test_obs_store_delegates_here(self):
        from repro.obs.store import _run_id

        record = {"command": "census", "counters": {"n": 3}}
        assert _run_id(record) == record_id(record)

    def test_diskstore_reexports_the_same_function(self):
        from repro.topology import diskstore

        assert diskstore.content_hash is content_hash
