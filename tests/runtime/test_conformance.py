"""Tests for the conformance campaign engine."""

import json

import pytest

from repro.__main__ import main
from repro.runtime.conformance import (
    SCHEMA,
    ConformanceConfig,
    ConformanceReport,
    TaskConformance,
    ViolationRecord,
    census_slice,
    conform_protocol,
    conform_task,
    replay_violation,
    resolve_campaign_task,
    run_campaign,
    shrink_schedule,
)
from repro.runtime.scheduler import run_with_schedule
from repro.runtime.simulation import check_trace, participation_simplices
from repro.tasks.zoo import identity_task, majority_consensus_task, path_task

#: small budgets so the engine is exercised end to end in milliseconds
FAST = ConformanceConfig(random_runs=3, exhaustive_limit=15, shrink_budget=60)


def own_vertex_builder(task):
    """The correct identity protocol: decide your own input vertex."""

    def build(inputs):
        factories = {}
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("write", "R", xv.value)
                        yield ("decide", xv)

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


def concurrency_sensitive_builder(task):
    """Broken on purpose: decide an own-colored vertex of the *wrong* value
    whenever another process's write is visible.  Solo-first executions are
    legal, concurrent ones violate Δ — so violations depend on genuine
    schedule structure and shrinking has work to do."""
    from repro.topology.simplex import Vertex

    def build(inputs):
        factories = {}
        n = max(inputs.colors()) + 1
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("write", "R", xv.value)
                        seen_other = False
                        for j in range(n):
                            value = yield ("read", "R", j)
                            if j != pid and value is not None:
                                seen_other = True
                        if seen_other:
                            yield ("decide", Vertex(xv.color, 1 - xv.value))
                        else:
                            yield ("decide", xv)

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


class TestConformProtocol:
    def test_correct_protocol_is_clean(self, identity3):
        result = conform_protocol(
            identity3, own_vertex_builder(identity3), FAST, name="identity"
        )
        assert result.ok
        assert result.total_runs > 0
        # every schedule family ran
        for phase in ("solo", "random", "adversarial", "exhaustive"):
            assert result.runs[phase] > 0, phase
        assert result.total_steps > 0
        assert sum(result.step_histogram.values()) == result.total_runs

    def test_broken_protocol_yields_shrunk_replayable_violation(self, identity3):
        build = concurrency_sensitive_builder(identity3)
        result = conform_protocol(identity3, build, FAST, name="broken")
        assert not result.ok
        assert result.violations
        for v in result.violations[:5]:
            assert v.reason
            assert len(v.schedule) <= v.original_length
            # the shrunk schedule still reproduces a violation
            assert replay_violation(identity3, build, v, FAST) is not None

    def test_shrinking_actually_shrinks(self, identity3):
        build = concurrency_sensitive_builder(identity3)
        result = conform_protocol(identity3, build, FAST, name="broken")
        shrunk = [v for v in result.violations if v.shrink_attempts > 0]
        assert shrunk
        assert any(len(v.schedule) < v.original_length for v in shrunk)

    def test_shrink_disabled_keeps_full_schedule(self, identity3):
        config = ConformanceConfig(
            random_runs=1, exhaustive_limit=0, adversarial=False, shrink=False
        )
        result = conform_protocol(
            identity3, concurrency_sensitive_builder(identity3), config
        )
        assert result.violations
        assert all(
            len(v.schedule) == v.original_length and v.shrink_attempts == 0
            for v in result.violations
        )


class TestShrinkSchedule:
    def test_minimizes_to_the_failing_core(self):
        # "violates" whenever at least two 1-steps appear
        violates = lambda s: list(s).count(1) >= 2
        shrunk, attempts = shrink_schedule(violates, [0, 1, 0, 0, 1, 1, 0, 2])
        assert list(shrunk) == [1, 1]
        assert attempts > 0

    def test_respects_budget(self):
        calls = []
        full = list(range(64))

        def violates(s):
            # only the untouched schedule violates: no removal ever succeeds,
            # so shrinking would try every chunk size without the budget cap
            calls.append(1)
            return list(s) == full

        shrunk, attempts = shrink_schedule(violates, full, budget=5)
        assert len(calls) == 5
        assert attempts == 5
        assert list(shrunk) == full

    def test_empty_schedule_if_roundrobin_tail_violates(self):
        shrunk, _ = shrink_schedule(lambda s: True, [0, 1, 2, 0, 1, 2])
        assert shrunk == ()


class TestConformTask:
    def test_direct_mode_task(self):
        result = conform_task(path_task(3), FAST, name="path")
        assert result.ok
        assert result.status == "solvable"
        assert result.mode == "direct"
        assert result.fallback_reason is None

    def test_figure7_mode_task(self, identity3):
        config = ConformanceConfig(
            participation="facets",
            random_runs=2,
            exhaustive_limit=10,
            prefer_direct=False,
        )
        result = conform_task(identity3, config, name="identity")
        assert result.ok
        assert result.mode == "figure-7"
        assert "direct mode disabled" in result.fallback_reason

    def test_unsolvable_task_is_skipped(self):
        result = conform_task(majority_consensus_task(), FAST, name="majority")
        assert result.status == "unsolvable"
        assert result.total_runs == 0
        assert result.ok


class TestCampaign:
    def test_report_shape_and_json(self, tmp_path):
        report = run_campaign(["path", "majority"], FAST, workers=1)
        assert isinstance(report, ConformanceReport)
        assert [t.name for t in report.tasks] == ["path", "majority"]
        assert report.ok
        payload = report.write(str(tmp_path / "conf.json"))
        assert payload["schema"] == SCHEMA
        with open(tmp_path / "conf.json", encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["total_runs"] == report.total_runs
        assert loaded["tasks"][0]["runs"]["solo"] > 0

    def test_parallel_matches_serial(self):
        names = ["path", "figure3", "majority"]
        serial = run_campaign(names, FAST, workers=1)
        parallel = run_campaign(names, FAST, workers=2, start_method="fork")

        def strip_seconds(payload):
            if isinstance(payload, dict):
                return {
                    k: strip_seconds(v)
                    for k, v in payload.items()
                    if k != "seconds"
                }
            if isinstance(payload, list):
                return [strip_seconds(v) for v in payload]
            return payload

        assert strip_seconds(serial.as_dict()) == strip_seconds(parallel.as_dict())

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(["path"], FAST, workers=0)
        with pytest.raises(ValueError):
            run_campaign(["path"], FAST, chunksize=0)

    def test_unknown_task_becomes_error_record(self):
        report = run_campaign(["no-such-task"], FAST, workers=1)
        assert not report.ok
        assert report.tasks[0].status == "error"
        assert "unknown campaign task" in report.tasks[0].error

    def test_census_slice_names_resolve(self):
        names = census_slice([0, 3])
        assert names == ["census-0", "census-3"]
        task = resolve_campaign_task("census-0")
        assert task.n_processes == 3
        with pytest.raises(ValueError):
            resolve_campaign_task("census-xyz")


class TestViolationRecordReplay:
    def test_record_replays_from_report_data_alone(self, identity3):
        """A shrunk record carries everything needed to replay: the input
        index (participation order) and the explicit schedule prefix."""
        build = concurrency_sensitive_builder(identity3)
        result = conform_protocol(identity3, build, FAST, name="broken")
        v = result.violations[0]
        inputs = participation_simplices(identity3, FAST.participation)[
            v.input_index
        ]
        n = max(inputs.colors()) + 1
        trace = run_with_schedule(n, build(inputs), v.schedule)
        assert check_trace(identity3, inputs, trace) is not None


class TestConformCLI:
    def test_cli_clean_run(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        code = main(
            [
                "conform",
                "--tasks",
                "path,figure3",
                "--random-runs",
                "2",
                "--exhaustive",
                "10",
                "--workers",
                "1",
                "--json",
                out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "0 violations" in printed
        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["ok"] is True

    def test_cli_requires_a_selection(self):
        with pytest.raises(SystemExit):
            main(["conform"])

    def test_cli_census_slice(self, capsys):
        code = main(
            [
                "conform",
                "--census",
                "2",
                "--random-runs",
                "1",
                "--exhaustive",
                "5",
                "--participation",
                "facets",
                "--workers",
                "1",
            ]
        )
        assert code == 0
        assert "census-1" in capsys.readouterr().out
