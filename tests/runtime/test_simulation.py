"""Unit tests for the validation harness itself."""

import pytest

from repro.runtime.simulation import (
    ValidationReport,
    check_trace,
    run_once,
    validate_protocol,
)
from repro.runtime.scheduler import ExecutionTrace
from repro.tasks.zoo import identity_task
from repro.topology.simplex import Simplex, Vertex


def correct_builder(task):
    def build(inputs):
        factories = {}
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("write", "R", xv.value)
                        yield ("decide", xv)

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


def wrong_color_builder(task):
    def build(inputs):
        factories = {}
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("decide", Vertex((xv.color + 1) % 3, xv.value))

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


class TestCheckTrace:
    def test_ok(self, identity3):
        sigma = identity3.input_complex.facets[0]
        trace = ExecutionTrace(decisions={v.color: v for v in sigma.vertices})
        assert check_trace(identity3, sigma, trace) is None

    def test_missing_decision(self, identity3):
        sigma = identity3.input_complex.facets[0]
        trace = ExecutionTrace(decisions={})
        assert "never decided" in check_trace(identity3, sigma, trace)

    def test_wrong_color(self, identity3):
        sigma = identity3.input_complex.facets[0]
        decisions = {v.color: Vertex((v.color + 1) % 3, v.value) for v in sigma.vertices}
        assert "own-colored" in check_trace(
            identity3, sigma, ExecutionTrace(decisions=decisions)
        )

    def test_not_in_delta(self, identity3):
        sigma = identity3.input_complex.facets[0]
        flipped = {
            v.color: Vertex(v.color, 1 - v.value) for v in sigma.vertices
        }
        trace = ExecutionTrace(decisions=flipped)
        reason = check_trace(identity3, sigma, trace)
        assert reason is not None and "Δ" in reason


class TestValidateProtocol:
    def test_correct_protocol_passes(self, identity3):
        report = validate_protocol(
            identity3, correct_builder(identity3), random_runs=3
        )
        assert report.ok
        assert report.runs > 0
        assert report.mean_steps > 0

    def test_violations_collected(self, identity3):
        report = validate_protocol(
            identity3,
            wrong_color_builder(identity3),
            participation="facets",
            random_runs=1,
        )
        assert not report.ok
        v = report.violations[0]
        assert v.schedule
        assert "own-colored" in v.reason

    def test_participation_facets_only(self, identity3):
        report = validate_protocol(
            identity3, correct_builder(identity3),
            participation="facets", random_runs=1,
        )
        # 8 facets x (6 sequential + 1 random)
        assert report.runs == 8 * 7

    def test_unknown_participation(self, identity3):
        with pytest.raises(ValueError):
            validate_protocol(
                identity3, correct_builder(identity3), participation="nope"
            )

    def test_exhaustive_limit(self, identity3):
        report = validate_protocol(
            identity3,
            correct_builder(identity3),
            participation="facets",
            random_runs=0,
            exhaustive_limit=10,
        )
        assert report.ok

    def test_run_once(self, identity3):
        sigma = identity3.input_complex.facets[0]
        decisions, reason = run_once(
            identity3, correct_builder(identity3), sigma, seed=3
        )
        assert reason is None
        assert set(decisions) == {0, 1, 2}

    def test_report_repr(self):
        assert "0 runs" in repr(ValidationReport())


class TestImpossibilityIsObservable:
    """Naive protocols for unsolvable tasks must produce violations."""

    def test_decide_own_input_fails_consensus(self, consensus3):
        # "everyone decides their own input" breaks agreement on mixed inputs
        report = validate_protocol(
            consensus3, correct_builder(consensus3),
            participation="facets", random_runs=0,
        )
        assert not report.ok
        assert any("Δ" in v.reason for v in report.violations)

    def test_zero_round_map_cannot_solve_approximate_agreement(self):
        # the best zero-communication rule still violates some schedule
        from repro.tasks.zoo import approximate_agreement_task
        from repro.topology.simplex import Vertex

        task = approximate_agreement_task(2)

        def build(inputs):
            factories = {}
            for x in inputs.vertices:
                def make(xv):
                    def factory(pid):
                        def body():
                            # decide the scaled own input (a legal vertex)
                            yield ("decide", Vertex(xv.color, 2 * xv.value))

                        return body()

                    return factory

                factories[x.color] = make(x)
            return factories

        report = validate_protocol(
            task, build, participation="facets", random_runs=0
        )
        assert not report.ok  # spread 2 > 1 on mixed inputs
