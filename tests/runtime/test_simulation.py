"""Unit tests for the validation harness itself."""

import pytest

import repro.runtime.simulation as simulation
from repro.runtime.simulation import (
    ValidationReport,
    check_trace,
    derive_run_seed,
    run_once,
    validate_protocol,
)
from repro.runtime.scheduler import ExecutionTrace, run_random
from repro.tasks.zoo import identity_task
from repro.topology.simplex import Simplex, Vertex


def correct_builder(task):
    def build(inputs):
        factories = {}
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("write", "R", xv.value)
                        yield ("decide", xv)

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


def wrong_color_builder(task):
    def build(inputs):
        factories = {}
        for x in inputs.vertices:
            def make(xv):
                def factory(pid):
                    def body():
                        yield ("decide", Vertex((xv.color + 1) % 3, xv.value))

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


class TestCheckTrace:
    def test_ok(self, identity3):
        sigma = identity3.input_complex.facets[0]
        trace = ExecutionTrace(decisions={v.color: v for v in sigma.vertices})
        assert check_trace(identity3, sigma, trace) is None

    def test_missing_decision(self, identity3):
        sigma = identity3.input_complex.facets[0]
        trace = ExecutionTrace(decisions={})
        assert "never decided" in check_trace(identity3, sigma, trace)

    def test_wrong_color(self, identity3):
        sigma = identity3.input_complex.facets[0]
        decisions = {v.color: Vertex((v.color + 1) % 3, v.value) for v in sigma.vertices}
        assert "own-colored" in check_trace(
            identity3, sigma, ExecutionTrace(decisions=decisions)
        )

    def test_not_in_delta(self, identity3):
        sigma = identity3.input_complex.facets[0]
        flipped = {
            v.color: Vertex(v.color, 1 - v.value) for v in sigma.vertices
        }
        trace = ExecutionTrace(decisions=flipped)
        reason = check_trace(identity3, sigma, trace)
        assert reason is not None and "Δ" in reason


class TestValidateProtocol:
    def test_correct_protocol_passes(self, identity3):
        report = validate_protocol(
            identity3, correct_builder(identity3), random_runs=3
        )
        assert report.ok
        assert report.runs > 0
        assert report.mean_steps > 0

    def test_violations_collected(self, identity3):
        report = validate_protocol(
            identity3,
            wrong_color_builder(identity3),
            participation="facets",
            random_runs=1,
        )
        assert not report.ok
        v = report.violations[0]
        assert v.schedule
        assert "own-colored" in v.reason

    def test_participation_facets_only(self, identity3):
        report = validate_protocol(
            identity3, correct_builder(identity3),
            participation="facets", random_runs=1,
        )
        # 8 facets x (6 sequential + 1 random)
        assert report.runs == 8 * 7

    def test_unknown_participation(self, identity3):
        with pytest.raises(ValueError):
            validate_protocol(
                identity3, correct_builder(identity3), participation="nope"
            )

    def test_exhaustive_limit(self, identity3):
        report = validate_protocol(
            identity3,
            correct_builder(identity3),
            participation="facets",
            random_runs=0,
            exhaustive_limit=10,
        )
        assert report.ok

    def test_run_once(self, identity3):
        sigma = identity3.input_complex.facets[0]
        decisions, reason = run_once(
            identity3, correct_builder(identity3), sigma, seed=3
        )
        assert reason is None
        assert set(decisions) == {0, 1, 2}

    def test_report_repr(self):
        assert "0 runs" in repr(ValidationReport())


class TestSeedMixing:
    """Regression: ``seed * 7919 + k`` collapsed to ``k`` under the default
    ``seed=0``, so every input simplex replayed one identical schedule set."""

    def test_run_seed_varies_across_inputs(self, identity3):
        facets = identity3.input_complex.facets
        for k in range(5):
            seeds = {derive_run_seed(0, sigma, k) for sigma in facets}
            assert len(seeds) == len(facets)

    def test_run_seed_varies_across_run_index(self, identity3):
        sigma = identity3.input_complex.facets[0]
        assert len({derive_run_seed(0, sigma, k) for k in range(20)}) == 20

    def test_run_seed_deterministic(self, identity3):
        sigma = identity3.input_complex.facets[0]
        assert derive_run_seed(3, sigma, 7) == derive_run_seed(3, sigma, 7)

    def test_validate_protocol_draws_distinct_seeds_per_input(
        self, identity3, monkeypatch
    ):
        seen = {}

        def recording_run_random(n, factories, seed, max_steps=100_000):
            seen.setdefault(seed, 0)
            seen[seed] += 1
            return run_random(n, factories, seed, max_steps=max_steps)

        monkeypatch.setattr(simulation, "run_random", recording_run_random)
        validate_protocol(
            identity3,
            correct_builder(identity3),
            participation="facets",
            random_runs=4,
        )
        n_facets = len(identity3.input_complex.facets)
        # pre-fix, all facets shared the seeds {0,1,2,3}: only 4 distinct
        assert len(seen) == 4 * n_facets
        assert all(count == 1 for count in seen.values())

    def test_schedule_diversity_across_inputs(self, identity3):
        """Distinct per-input seeds must yield distinct random schedules."""
        facets = identity3.input_complex.facets

        def slow_factory(pid):
            def body():
                for _ in range(6):
                    yield ("scan", "S")
                yield ("decide", pid)

            return body()

        factories = {pid: slow_factory for pid in range(3)}
        schedules = {
            tuple(
                run_random(3, factories, seed=derive_run_seed(0, sigma, 0)).schedule
            )
            for sigma in facets
        }
        assert len(schedules) > 1


class TestImpossibilityIsObservable:
    """Naive protocols for unsolvable tasks must produce violations."""

    def test_decide_own_input_fails_consensus(self, consensus3):
        # "everyone decides their own input" breaks agreement on mixed inputs
        report = validate_protocol(
            consensus3, correct_builder(consensus3),
            participation="facets", random_runs=0,
        )
        assert not report.ok
        assert any("Δ" in v.reason for v in report.violations)

    def test_zero_round_map_cannot_solve_approximate_agreement(self):
        # the best zero-communication rule still violates some schedule
        from repro.tasks.zoo import approximate_agreement_task
        from repro.topology.simplex import Vertex

        task = approximate_agreement_task(2)

        def build(inputs):
            factories = {}
            for x in inputs.vertices:
                def make(xv):
                    def factory(pid):
                        def body():
                            # decide the scaled own input (a legal vertex)
                            yield ("decide", Vertex(xv.color, 2 * xv.value))

                        return body()

                    return factory

                factories[x.color] = make(x)
            return factories

        report = validate_protocol(
            task, build, participation="facets", random_runs=0
        )
        assert not report.ok  # spread 2 > 1 on mixed inputs
