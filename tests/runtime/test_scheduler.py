"""Unit tests for the cooperative scheduler."""

import pytest

from repro.runtime.scheduler import (
    Execution,
    SchedulerError,
    _explore_schedules_replay,
    explore_schedules,
    run_random,
    run_solo_blocks,
    run_with_schedule,
)


def writer_reader_factory(pid: int):
    """Write own id, read the other register, decide what was seen."""

    def body():
        yield ("write", "R", f"hello-{pid}")
        other = yield ("read", "R", 1 - pid)
        yield ("decide", other)

    return body()


class TestExecution:
    def test_step_and_done(self):
        ex = Execution(2, {0: writer_reader_factory(0), 1: writer_reader_factory(1)})
        assert ex.runnable() == (0, 1)
        while not ex.done():
            ex.step(ex.runnable()[0])
        assert set(ex.trace.decisions) == {0, 1}

    def test_sequential_order_visibility(self):
        trace = run_solo_blocks(
            2, {0: writer_reader_factory, 1: writer_reader_factory}, order=[0, 1]
        )
        assert trace.decisions[0] is None        # ran before 1 wrote
        assert trace.decisions[1] == "hello-0"   # saw 0's write

    def test_step_on_finished_process_rejected(self):
        ex = Execution(1, {0: iter([("decide", 1)])})
        # a bare iterator is not a generator; use a real one
        def body():
            yield ("decide", 1)

        ex = Execution(1, {0: body()})
        ex.step(0)
        with pytest.raises(SchedulerError):
            ex.step(0)

    def test_unknown_op_rejected(self):
        def bad():
            yield ("frobnicate",)

        ex = Execution(1, {0: bad()})
        with pytest.raises(SchedulerError):
            ex.step(0)

    def test_return_without_decide_rejected(self):
        def returns():
            return 42
            yield  # pragma: no cover

        ex = Execution(1, {0: returns()})
        with pytest.raises(SchedulerError):
            ex.step(0)

    def test_step_budget(self):
        def forever():
            while True:
                yield ("scan", "S")

        ex = Execution(1, {0: forever()}, max_steps=10)
        with pytest.raises(SchedulerError):
            while True:
                ex.step(0)


class TestOpRecording:
    def test_ops_recorded(self):
        ex = Execution(
            2,
            {0: writer_reader_factory(0), 1: writer_reader_factory(1)},
            record_ops=True,
        )
        while not ex.done():
            ex.step(ex.runnable()[0])
        assert len(ex.trace.ops) == 6
        kinds = [op[0] for _, op, _ in ex.trace.ops]
        assert kinds.count("write") == 2
        assert kinds.count("decide") == 2

    def test_ops_of_and_writes_to(self):
        ex = Execution(
            2,
            {0: writer_reader_factory(0), 1: writer_reader_factory(1)},
            record_ops=True,
        )
        while not ex.done():
            ex.step(ex.runnable()[0])
        mine = ex.trace.ops_of(0)
        assert mine[0][0] == ("write", "R", "hello-0")
        writes = ex.trace.writes_to("R")
        assert len(writes) == 2

    def test_off_by_default(self):
        ex = Execution(2, {0: writer_reader_factory(0), 1: writer_reader_factory(1)})
        while not ex.done():
            ex.step(ex.runnable()[0])
        assert ex.trace.ops == []

    def test_figure7_decisions_write_bound(self, identity3):
        """Each Figure 7 process updates M_decisions a bounded number of
        times (Lemma 5.3's termination, observed at the op level)."""
        from repro.runtime.chromatic_agreement import (
            make_chromatic_agreement_factories,
        )
        from repro.topology.links import longest_link_size

        sigma = identity3.input_complex.facets[0]

        def agnostic(pid, x):
            yield ("update", "_AG", x)
            state = yield ("scan", "_AG")
            from repro.topology.simplex import Simplex

            tau = Simplex(v for v in state if v is not None)
            return identity3.delta(tau).vertices[0]

        factories = make_chromatic_agreement_factories(identity3, sigma, agnostic)
        import random

        rng = random.Random(7)
        ex = Execution(
            3, {pid: f(pid) for pid, f in factories.items()}, record_ops=True
        )
        while not ex.done():
            ex.step(rng.choice(ex.runnable()))
        writes = ex.trace.writes_to("M_decisions")
        bound = 3 * (2 + longest_link_size(identity3.output_complex))
        assert len(writes) <= bound


class TestRunners:
    def test_run_with_schedule_replays(self):
        sched = [0, 0, 0, 1, 1, 1]
        t1 = run_with_schedule(2, {0: writer_reader_factory, 1: writer_reader_factory}, sched)
        t2 = run_with_schedule(2, {0: writer_reader_factory, 1: writer_reader_factory}, sched)
        assert t1.decisions == t2.decisions

    def test_run_with_schedule_tolerates_extra_entries(self):
        sched = [0] * 50 + [1] * 50
        trace = run_with_schedule(2, {0: writer_reader_factory, 1: writer_reader_factory}, sched)
        assert set(trace.decisions) == {0, 1}

    def test_run_random_deterministic_per_seed(self):
        a = run_random(2, {0: writer_reader_factory, 1: writer_reader_factory}, seed=5)
        b = run_random(2, {0: writer_reader_factory, 1: writer_reader_factory}, seed=5)
        assert a.schedule == b.schedule
        assert a.decisions == b.decisions

    def test_trace_counts_steps(self):
        trace = run_random(2, {0: writer_reader_factory, 1: writer_reader_factory}, seed=1)
        assert trace.total_steps() == 6  # 3 ops per process


class TestRoundRobinTail:
    """Regression: the tail loops claimed round-robin but ran leftover
    processes as solo blocks in pid order (``for … break`` re-entered from
    the lowest pid every iteration)."""

    def test_run_with_schedule_tail_interleaves(self):
        trace = run_with_schedule(
            2, {0: writer_reader_factory, 1: writer_reader_factory}, schedule=[]
        )
        # one step per live process per pass, in pid order
        assert trace.schedule == [0, 1, 0, 1, 0, 1]
        # under the interleaved tail both writes land before either read
        assert trace.decisions[0] == "hello-1"
        assert trace.decisions[1] == "hello-0"

    def test_run_with_schedule_tail_after_partial_prefix(self):
        trace = run_with_schedule(
            2, {0: writer_reader_factory, 1: writer_reader_factory}, schedule=[1]
        )
        assert trace.schedule == [1, 0, 1, 0, 1, 0]

    def test_run_solo_blocks_partial_order_tail_interleaves(self):
        def factory3(pid):
            def body():
                yield ("write", "R", f"hello-{pid}")
                other = yield ("read", "R", (pid + 1) % 3)
                yield ("decide", other)

            return body()

        trace = run_solo_blocks(3, {pid: factory3 for pid in range(3)}, order=[2])
        # process 2 runs solo, then 0 and 1 alternate step for step
        assert trace.schedule == [2, 2, 2, 0, 1, 0, 1, 0, 1]

    def test_full_order_unchanged(self):
        trace = run_solo_blocks(
            2, {0: writer_reader_factory, 1: writer_reader_factory}, order=[0, 1]
        )
        assert trace.schedule == [0, 0, 0, 1, 1, 1]


class TestFork:
    def test_fork_is_independent(self):
        ex = Execution(2, {0: writer_reader_factory(0), 1: writer_reader_factory(1)})
        ex.step(0)  # 0 writes
        factories = {0: writer_reader_factory, 1: writer_reader_factory}
        fork = ex.fork(factories)
        # diverge: original runs 0 solo first, fork runs 1 solo first
        while 0 in ex.runnable():
            ex.step(0)
        while not ex.done():
            ex.step(ex.runnable()[0])
        while 1 in fork.runnable():
            fork.step(1)
        while not fork.done():
            fork.step(fork.runnable()[0])
        assert ex.trace.decisions == {0: None, 1: "hello-0"}
        assert fork.trace.decisions == {0: "hello-1", 1: "hello-0"}

    def test_fork_memory_is_isolated(self):
        ex = Execution(2, {0: writer_reader_factory(0), 1: writer_reader_factory(1)})
        ex.step(0)
        fork = ex.fork({0: writer_reader_factory, 1: writer_reader_factory})
        ex.memory.register_array("R").write(1, "corrupted")
        assert fork.memory.register_array("R").read(1) is None

    def test_fork_preserves_trace_prefix(self):
        ex = Execution(2, {0: writer_reader_factory(0), 1: writer_reader_factory(1)})
        ex.step(0)
        ex.step(1)
        fork = ex.fork({0: writer_reader_factory, 1: writer_reader_factory})
        assert fork.trace.schedule == [0, 1]
        assert fork.trace.steps == {0: 1, 1: 1}

    def test_fork_equivalent_to_replay(self):
        """A fork continued on a schedule matches a from-scratch run."""
        factories = {0: writer_reader_factory, 1: writer_reader_factory}
        ex = Execution(2, {pid: f(pid) for pid, f in factories.items()})
        for pid in [0, 1, 0]:
            ex.step(pid)
        fork = ex.fork(factories)
        for pid in [1, 1, 0]:
            fork.step(pid)
        reference = run_with_schedule(2, factories, [0, 1, 0, 1, 1, 0])
        assert fork.trace.decisions == reference.decisions
        assert fork.trace.schedule == reference.schedule


class TestExploreSchedules:
    def test_enumerates_all_interleavings(self):
        # two processes with 2 ops each (write + decide): C(4,2)/..., the
        # interleavings of 3-step processes: C(6,3) = 20
        traces = list(
            explore_schedules(2, {0: writer_reader_factory, 1: writer_reader_factory})
        )
        assert len(traces) == 20
        schedules = {tuple(t.schedule) for t in traces}
        assert len(schedules) == 20

    def test_covers_both_outcomes(self):
        traces = list(
            explore_schedules(2, {0: writer_reader_factory, 1: writer_reader_factory})
        )
        seen_by_0 = {t.decisions[0] for t in traces}
        assert seen_by_0 == {None, "hello-1"}

    def test_max_executions_cap(self):
        traces = list(
            explore_schedules(
                2,
                {0: writer_reader_factory, 1: writer_reader_factory},
                max_executions=5,
            )
        )
        assert len(traces) == 5

    def test_prefix_tree_matches_replay_enumerator(self):
        """The prefix-tree enumerator yields exactly the traces of the old
        replay-from-scratch DFS, in the same lexicographic order."""
        factories = {0: writer_reader_factory, 1: writer_reader_factory}
        fast = list(explore_schedules(2, factories))
        slow = list(_explore_schedules_replay(2, factories))
        assert [t.schedule for t in fast] == [t.schedule for t in slow]
        assert [t.decisions for t in fast] == [t.decisions for t in slow]

    def test_prefix_tree_matches_replay_under_cap(self):
        factories = {0: writer_reader_factory, 1: writer_reader_factory}
        fast = list(explore_schedules(2, factories, max_executions=7))
        slow = list(_explore_schedules_replay(2, factories, max_executions=7))
        assert [t.schedule for t in fast] == [t.schedule for t in slow]

    def test_three_process_enumeration_counts_match(self):
        def tiny(pid):
            def body():
                yield ("write", "R", pid)
                yield ("decide", pid)

            return body()

        factories = {pid: tiny for pid in range(3)}
        fast = list(explore_schedules(3, factories))
        slow = list(_explore_schedules_replay(3, factories))
        # interleavings of three 2-step processes: 6!/(2!2!2!) = 90
        assert len(fast) == len(slow) == 90
        assert {tuple(t.schedule) for t in fast} == {
            tuple(t.schedule) for t in slow
        }
