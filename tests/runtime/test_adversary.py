"""Unit tests for adversarial schedulers."""

import pytest

from repro.runtime.adversary import (
    adversarial_sweep,
    alternator,
    run_adversarial,
    standard_battery,
    starver,
    stutterer,
)
from repro.runtime.simulation import check_trace, validate_protocol
from repro.tasks.zoo import identity_task, set_agreement_task


def echo_factories(n):
    def make(pid):
        def factory(p):
            def body():
                yield ("write", "R", p)
                seen = []
                for j in range(n):
                    seen.append((yield ("read", "R", j)))
                yield ("decide", tuple(seen))

            return body()

        return factory

    return {pid: make(pid) for pid in range(n)}


class TestStrategies:
    def test_starver_runs_runner_first(self):
        trace = run_adversarial(3, echo_factories(3), starver((1, 2), 0))
        # process 0 finished before anyone else moved: it saw nobody
        assert trace.decisions[0] == (0, None, None)

    def test_alternator_interleaves_pair(self):
        trace = run_adversarial(3, echo_factories(3), alternator((0, 1)))
        prefix = trace.schedule[:4]
        assert set(prefix) == {0, 1}
        # process 2 only moves after the pair is done
        first_2 = trace.schedule.index(2)
        assert all(pid in (0, 1) for pid in trace.schedule[:first_2])

    def test_stutterer_slows_target(self):
        trace = run_adversarial(3, echo_factories(3), stutterer(0, period=5))
        first_0 = trace.schedule.index(0)
        assert first_0 >= 4

    def test_bad_pick_falls_back(self):
        # a strategy naming a finished process must not crash the runner
        trace = run_adversarial(2, echo_factories(2), lambda runnable, step: 0)
        assert set(trace.decisions) == {0, 1}


class TestBattery:
    def test_standard_battery_composition(self):
        names = [name for name, _ in standard_battery([0, 1, 2])]
        assert len(names) == 3 + 3 + 3  # starvers + alternators + stutterers
        assert len(set(names)) == len(names)

    def test_sweep_runs_all(self):
        results = list(
            adversarial_sweep(3, lambda: echo_factories(3), [0, 1, 2])
        )
        assert len(results) == 9
        for _name, trace in results:
            assert set(trace.decisions) == {0, 1, 2}


class TestBatteryDeterminism:
    def test_standard_battery_names_stable(self):
        first = [name for name, _ in standard_battery([0, 1, 2])]
        second = [name for name, _ in standard_battery([0, 1, 2])]
        assert first == second

    def test_standard_battery_order_independent_of_pid_order(self):
        assert [n for n, _ in standard_battery([2, 0, 1])] == [
            n for n, _ in standard_battery([0, 1, 2])
        ]

    def test_sweep_is_deterministic(self):
        def run_sweep():
            return {
                name: tuple(trace.schedule)
                for name, trace in adversarial_sweep(
                    3, lambda: echo_factories(3), [0, 1, 2]
                )
            }

        assert run_sweep() == run_sweep()


class TestStuttererPeriod:
    def test_slow_process_moves_only_on_period_boundaries(self):
        period = 4
        trace = run_adversarial(3, echo_factories(3), stutterer(0, period=period))
        # while other processes are live, the slow one moves only at global
        # steps s with s % period == period - 1
        last_other = max(i for i, pid in enumerate(trace.schedule) if pid != 0)
        for i, pid in enumerate(trace.schedule[: last_other + 1]):
            if pid == 0:
                assert i % period == period - 1

    def test_period_controls_first_move(self):
        for period in (2, 3, 5):
            trace = run_adversarial(3, echo_factories(3), stutterer(0, period=period))
            assert trace.schedule.index(0) == period - 1

    def test_slow_process_still_decides(self):
        trace = run_adversarial(3, echo_factories(3), stutterer(1, period=7))
        assert set(trace.decisions) == {0, 1, 2}


class TestOutsideDeltaViolationMessage:
    def test_correctly_colored_simplex_outside_delta(self, identity3):
        """Decisions that form a legal, correctly-colored output simplex
        which is *not* in Δ(τ) must trip the Δ-membership message."""
        sigma = identity3.input_complex.facets[0]
        other = next(
            tau for tau in identity3.input_complex.facets if tau != sigma
        )
        wrong = {v.color: v for v in other.vertices}  # own colors, wrong facet

        def build(pid):
            def body():
                yield ("write", "R", pid)
                yield ("decide", wrong[pid])

            return body()

        trace = run_adversarial(
            3, {pid: build for pid in range(3)}, alternator((0, 2))
        )
        reason = check_trace(identity3, sigma, trace)
        assert reason is not None
        assert "are not in Δ" in reason
        assert repr(sigma) in reason


class TestProtocolUnderAdversaries:
    def test_synthesized_protocol_survives_battery(self):
        from repro import synthesize_protocol

        task = identity_task(3)
        protocol = synthesize_protocol(task, prefer_direct=False)
        report = validate_protocol(
            task,
            protocol.factories,
            participation="facets",
            random_runs=0,
            adversarial=True,
        )
        assert report.ok, report.violations[:2]

    def test_3set_figure7_survives_battery(self):
        from repro import synthesize_protocol

        task = set_agreement_task(3, 3)
        protocol = synthesize_protocol(task, prefer_direct=False)
        sigma = task.input_complex.facets[0]
        for name, trace in adversarial_sweep(
            3, lambda: protocol.factories(sigma), [0, 1, 2]
        ):
            assert check_trace(task, sigma, trace) is None, name
