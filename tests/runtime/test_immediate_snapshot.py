"""Unit tests for the Borowsky–Gafni immediate snapshot.

The three defining properties of immediate snapshot views:

* self-inclusion: ``i ∈ view_i``;
* containment (comparability): views are totally ordered by ``⊆``;
* immediacy: ``j ∈ view_i`` implies ``view_j ⊆ view_i``.

They are checked exhaustively over all interleavings for 2 processes and
over all interleavings (capped) plus random schedules for 3.
"""

import itertools

import pytest

from repro.runtime.immediate_snapshot import immediate_snapshot
from repro.runtime.scheduler import explore_schedules, run_random, run_solo_blocks
from repro.topology.subdivision import ordered_partitions


def is_factory(n):
    def make(pid):
        def body():
            view = yield from immediate_snapshot("IS", n, pid, f"v{pid}")
            yield ("decide", frozenset(view.keys()))

        return body()

    return {pid: (lambda p: make(p)) for pid in range(n)}


def check_is_properties(decisions):
    views = dict(decisions)
    for i, view in views.items():
        assert i in view, f"self-inclusion violated for {i}"
    for i, j in itertools.combinations(views, 2):
        vi, vj = views[i], views[j]
        assert vi <= vj or vj <= vi, "views not comparable"
    for i, view in views.items():
        for j in view:
            assert views[j] <= view, f"immediacy violated: {j} in view of {i}"


class TestTwoProcessesExhaustive:
    def test_all_interleavings(self):
        for trace in explore_schedules(2, is_factory(2)):
            check_is_properties(trace.decisions)

    def test_all_outcomes_reachable(self):
        outcomes = set()
        for trace in explore_schedules(2, is_factory(2)):
            outcomes.add((frozenset(trace.decisions[0]), frozenset(trace.decisions[1])))
        # three IS outcomes for two processes: 0 first, 1 first, together
        assert len(outcomes) == 3


class TestThreeProcesses:
    def test_random_schedules(self):
        for seed in range(200):
            trace = run_random(3, is_factory(3), seed=seed)
            check_is_properties(trace.decisions)

    def test_sequential_schedules(self):
        for order in itertools.permutations(range(3)):
            trace = run_solo_blocks(3, is_factory(3), order)
            check_is_properties(trace.decisions)
            first = order[0]
            assert trace.decisions[first] == frozenset({first})

    def test_capped_exhaustive(self):
        for trace in explore_schedules(3, is_factory(3), max_executions=400):
            check_is_properties(trace.decisions)

    def test_outcomes_are_ordered_partitions(self):
        """Every reachable outcome corresponds to an ordered partition."""
        valid = set()
        for blocks in ordered_partitions(range(3)):
            seen = set()
            outcome = {}
            for block in blocks:
                seen |= set(block)
                for i in block:
                    outcome[i] = frozenset(seen)
            valid.add(tuple(sorted(outcome.items())))
        reached = set()
        for seed in range(400):
            trace = run_random(3, is_factory(3), seed=seed)
            outcome = tuple(sorted(trace.decisions.items()))
            assert outcome in valid, f"non-IS outcome {outcome}"
            reached.add(outcome)
        # random scheduling reaches a large share of the 13 IS outcomes
        assert len(reached) >= 8

    def test_partial_participation(self):
        factories = is_factory(3)
        del factories[2]
        trace = run_random(3, factories, seed=1)
        views = trace.decisions
        assert set(views) == {0, 1}
        check_is_properties(views)
        assert all(2 not in v for v in views.values())
