"""Unit tests for the Figure 7 algorithm.

The decisive tests inject *adversarial* color-agnostic algorithms — ones
that deliberately decide wrongly-colored vertices — and check the
algorithm still produces a properly colored simplex of ``Δ(τ)``.
"""

import itertools

import pytest

from repro.runtime.chromatic_agreement import (
    _canonical_path,
    _pick_completion,
    _vertex_numbering,
    make_chromatic_agreement_factories,
)
from repro.runtime.scheduler import explore_schedules, run_random, run_solo_blocks
from repro.runtime.simulation import check_trace
from repro.tasks.zoo import identity_task, set_agreement_task
from repro.topology.simplex import Simplex, Vertex


def copycat_agnostic(task):
    """A legal but maximally color-confusing A_C.

    Each process publishes its input, scans for decisions already made and
    *adopts the first one it sees* (hence often a wrongly-colored vertex);
    only if none exists does it decide its own-colored vertex from
    ``Δ(τ)``.  All decisions stay within one simplex of ``Δ(τ)`` for tasks
    whose per-color choices are facet-consistent (identity, k-set
    agreement), so the Figure 7 precondition holds while the colors are
    wrong for every copier."""

    def agnostic(pid, x_vertex):
        yield ("update", "_CC_in", x_vertex)
        state = yield ("scan", "_CC_in")
        tau = Simplex(x for x in state if x is not None)
        decisions = yield ("scan", "_CC_dec")
        seen = [d for d in decisions if d is not None]
        if seen:
            mine = seen[0]
        else:
            image = task.delta(tau)
            mine = [v for v in image.vertices if v.color == pid][0]
        yield ("update", "_CC_dec", mine)
        return mine

    return agnostic


def snapshot_first_agnostic(task, rounds=0):
    """A_C that decides the smallest vertex of Δ(τ) seen in a snapshot —
    colors are ignored entirely, but the choice respects Δ(τ)."""

    def agnostic(pid, x_vertex):
        yield ("update", "_AG", x_vertex)
        state = yield ("scan", "_AG")
        tau = Simplex(x for x in state if x is not None)
        image = task.delta(tau)
        return image.vertices[0]

    return agnostic


class TestHelpers:
    def test_vertex_numbering_bijective(self, identity3):
        numbering = _vertex_numbering(identity3.output_complex)
        assert sorted(numbering.values()) == list(range(len(numbering)))

    def test_pick_completion(self, identity3):
        tau = identity3.input_complex.facets[0]
        image = identity3.delta(tau)
        facet = image.facets[0]
        u, w = [v for v in facet.vertices if v.color != 0]
        v = _pick_completion(identity3, tau, (u, w), 0)
        assert v.color == 0
        assert Simplex([u, w, v]) in image

    def test_pick_completion_failure(self, identity3):
        tau = identity3.input_complex.facets[0]
        bad = (Vertex(1, "nope"), Vertex(2, "nope"))
        with pytest.raises(RuntimeError):
            _pick_completion(identity3, tau, bad, 0)

    def test_canonical_path_symmetric(self):
        from repro.topology.complexes import SimplicialComplex

        link = SimplicialComplex(
            [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]
        )
        numbering = {v: i for i, v in enumerate(sorted(link.vertices))}
        p1 = _canonical_path(link, "a", "c", numbering)
        p2 = _canonical_path(link, "c", "a", numbering)
        assert p1 == list(reversed(p2))
        assert len(p1) == 3


class TestAdversarialAgnostic:
    """The algorithm must fix wrong colors produced by A_C."""

    def _run_many(self, task, agnostic, seeds=40):
        sigma = task.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(task, sigma, agnostic)
        n = task.n_processes
        for seed in range(seeds):
            trace = run_random(n, factories, seed=seed)
            reason = check_trace(task, sigma, trace)
            assert reason is None, f"seed {seed}: {reason}"
        for order in itertools.permutations(range(n)):
            trace = run_solo_blocks(n, factories, order)
            reason = check_trace(task, sigma, trace)
            assert reason is None, f"order {order}: {reason}"

    def test_copycat_agnostic_identity(self, identity3):
        self._run_many(identity3, copycat_agnostic(identity3))

    def test_copycat_agnostic_3set(self):
        task = set_agreement_task(3, 3)
        self._run_many(task, copycat_agnostic(task))

    def test_snapshot_agnostic_identity(self, identity3):
        self._run_many(identity3, snapshot_first_agnostic(identity3))

    def test_snapshot_agnostic_3set(self):
        task = set_agreement_task(3, 3)
        self._run_many(task, snapshot_first_agnostic(task))

    def test_partial_participation(self, identity3):
        agnostic = snapshot_first_agnostic(identity3)
        for e in identity3.input_complex.simplices(dim=1)[:4]:
            factories = make_chromatic_agreement_factories(identity3, e, agnostic)
            for seed in range(20):
                trace = run_random(3, factories, seed=seed)
                assert check_trace(identity3, e, trace) is None

    def test_solo_participation(self, identity3):
        agnostic = snapshot_first_agnostic(identity3)
        x = identity3.input_complex.simplices(dim=0)[0]
        factories = make_chromatic_agreement_factories(identity3, x, agnostic)
        trace = run_random(3, factories, seed=0)
        assert check_trace(identity3, x, trace) is None

    def test_exhaustive_small(self, identity3):
        """Exhaustively enumerate interleavings (capped) for the adversarial
        agnostic on full participation."""
        sigma = identity3.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(
            identity3, sigma, snapshot_first_agnostic(identity3)
        )
        count = 0
        for trace in explore_schedules(3, factories, max_executions=300):
            assert check_trace(identity3, sigma, trace) is None
            count += 1
        assert count == 300


class TestFuzzedSchedules:
    """Hypothesis-driven schedule fuzzing for the Figure 7 algorithm."""

    def test_arbitrary_schedules_identity(self, identity3):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.runtime.scheduler import run_with_schedule

        sigma = identity3.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(
            identity3, sigma, snapshot_first_agnostic(identity3)
        )

        @given(st.lists(st.integers(0, 2), min_size=0, max_size=60))
        @settings(max_examples=60, deadline=None)
        def run(schedule):
            trace = run_with_schedule(3, factories, schedule)
            assert check_trace(identity3, sigma, trace) is None

        run()

    def test_arbitrary_schedules_partial(self, identity3):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.runtime.scheduler import run_with_schedule

        edge = identity3.input_complex.simplices(dim=1)[0]
        factories = make_chromatic_agreement_factories(
            identity3, edge, snapshot_first_agnostic(identity3)
        )

        @given(st.lists(st.integers(0, 2), min_size=0, max_size=40))
        @settings(max_examples=40, deadline=None)
        def run(schedule):
            trace = run_with_schedule(3, factories, schedule)
            assert check_trace(identity3, edge, trace) is None

        run()


class TestPickers:
    def test_spread_picker_on_split_fan(self):
        """Adversarial completion choices still converge (Lemma 5.3 holds
        for any picker); the negotiation walks the strip."""
        from repro.runtime.chromatic_agreement import spread_completion
        from repro.splitting import link_connected_form
        from repro.tasks.zoo import fan_task

        task = link_connected_form(fan_task(components=2, strip_length=4)).task
        sigma = task.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(
            task, sigma, snapshot_first_agnostic(task), picker=spread_completion
        )
        for seed in range(40):
            trace = run_random(3, factories, seed=seed)
            assert check_trace(task, sigma, trace) is None

    def test_link_connectivity_guard(self):
        """Figure 7 refuses tasks with LAPs (its Lemma 5.3 hypothesis)."""
        from repro.tasks.zoo import fan_task

        task = fan_task(components=2)  # hub link disconnected
        sigma = task.input_complex.facets[0]
        with pytest.raises(ValueError, match="link-connected"):
            make_chromatic_agreement_factories(
                task, sigma, snapshot_first_agnostic(task)
            )


class TestNegotiationLength:
    """The step-(14) negotiation walks the link path (Lemma 5.3's bound)."""

    @staticmethod
    def _negotiation_steps(m: int) -> int:
        from repro.runtime.adversary import run_adversarial
        from repro.runtime.chromatic_agreement import spread_completion
        from repro.splitting import link_connected_form
        from repro.tasks.zoo import fan_task

        task = link_connected_form(fan_task(components=2, strip_length=m)).task
        sigma = task.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(
            task, sigma, snapshot_first_agnostic(task),
            picker=spread_completion, check=False,
        )

        # p0 (the pivot-to-be) runs alone first; then p1 and p2 alternate
        # step-for-step — the schedule that maximizes the negotiation
        def strategy(runnable, step):
            if 0 in runnable:
                return 0
            live = [p for p in (1, 2) if p in runnable]
            return live[step % len(live)]

        trace = run_adversarial(3, factories, strategy)
        reason = check_trace(task, sigma, trace)
        assert reason is None, reason
        return max(trace.steps[1], trace.steps[2])

    def test_steps_grow_with_strip_length(self):
        short = self._negotiation_steps(2)
        long = self._negotiation_steps(10)
        assert long > short, (short, long)

    def test_monotone_over_sweep(self):
        values = [self._negotiation_steps(m) for m in (1, 4, 8)]
        assert values == sorted(values)


class TestTerminationBound:
    def test_steps_bounded_by_link_length(self, identity3):
        """Lemma 5.3: time is at most proportional to the longest link."""
        from repro.topology.links import longest_link_size

        sigma = identity3.input_complex.facets[0]
        factories = make_chromatic_agreement_factories(
            identity3, sigma, snapshot_first_agnostic(identity3)
        )
        bound = 20 + 4 * longest_link_size(identity3.output_complex)
        for seed in range(30):
            trace = run_random(3, factories, seed=seed)
            assert max(trace.steps.values()) <= bound
