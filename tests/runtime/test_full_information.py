"""Unit tests: the FI protocol's views realize the chromatic subdivision."""

import itertools

from repro.runtime.full_information import make_full_information_factories
from repro.runtime.scheduler import explore_schedules, run_random, run_solo_blocks
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import Simplex, chrom
from repro.topology.subdivision import iterated_chromatic_subdivision


INPUT = chrom((0, "x"), (1, "y"), (2, "z"))


def _complex_of(simplex):
    return ChromaticComplex([simplex])


class TestViewsAreSubdivisionVertices:
    def test_one_round_views_in_ch1(self):
        sub = iterated_chromatic_subdivision(_complex_of(INPUT), 1)
        vertices = set(sub.complex.vertices)
        factories, n = make_full_information_factories(INPUT, rounds=1)
        for seed in range(100):
            trace = run_random(n, factories, seed=seed)
            for v in trace.decisions.values():
                assert v in vertices
            assert Simplex(trace.decisions.values()) in sub.complex

    def test_two_round_views_in_ch2(self):
        sub = iterated_chromatic_subdivision(_complex_of(INPUT), 2)
        vertices = set(sub.complex.vertices)
        factories, n = make_full_information_factories(INPUT, rounds=2)
        for seed in range(50):
            trace = run_random(n, factories, seed=seed)
            assert set(trace.decisions.values()) <= vertices
            assert Simplex(trace.decisions.values()) in sub.complex

    def test_zero_rounds_identity(self):
        factories, n = make_full_information_factories(INPUT, rounds=0)
        trace = run_random(n, factories, seed=0)
        assert set(trace.decisions.values()) == set(INPUT.vertices)


class TestProtocolComplexCoverage:
    def test_two_process_one_round_exactly_ch1(self):
        """Exhaustive: 2-process FI reaches exactly the Ch¹ facets."""
        edge = chrom((0, "x"), (1, "y"))
        sub = iterated_chromatic_subdivision(_complex_of(edge), 1)
        expected = set(sub.complex.facets)
        factories, n = make_full_information_factories(edge, rounds=1)
        reached = set()
        for trace in explore_schedules(n, factories):
            reached.add(Simplex(trace.decisions.values()))
        assert reached == expected

    def test_three_process_sequential_reaches_corner_facets(self):
        sub = iterated_chromatic_subdivision(_complex_of(INPUT), 1)
        factories, n = make_full_information_factories(INPUT, rounds=1)
        reached = set()
        for order in itertools.permutations(range(3)):
            trace = run_solo_blocks(n, factories, order)
            reached.add(Simplex(trace.decisions.values()))
        assert len(reached) == 6  # the six fully-ordered IS executions
        assert reached <= set(sub.complex.facets)

    def test_three_process_random_coverage(self):
        sub = iterated_chromatic_subdivision(_complex_of(INPUT), 1)
        factories, n = make_full_information_factories(INPUT, rounds=1)
        reached = set()
        for seed in range(500):
            trace = run_random(n, factories, seed=seed)
            facet = Simplex(trace.decisions.values())
            assert facet in sub.complex
            reached.add(facet)
        assert len(reached) >= 7  # of the 13

    def test_partial_participation_lands_in_face_subdivision(self):
        edge = Simplex([v for v in INPUT.vertices if v.color != 2])
        sub = iterated_chromatic_subdivision(_complex_of(INPUT), 1)
        factories, n = make_full_information_factories(INPUT, rounds=1)
        del factories[2]
        for seed in range(50):
            trace = run_random(n, factories, seed=seed)
            facet = Simplex(trace.decisions.values())
            assert facet in sub.carrier(edge)
