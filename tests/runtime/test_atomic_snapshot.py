"""Linearizability tests for the register-based atomic snapshot.

The AADGMS construction must return, from every scan, a value vector that
actually occurred as the register-array state at some instant inside the
scan's interval.  The scheduler makes this checkable: writes are atomic
steps, so the sequence of register states is well-defined; we record it
and assert every scan result is one of the states that existed during the
scan.  For two processes the check runs over *all* interleavings.
"""

import itertools

import pytest

from repro.runtime.atomic_snapshot import snapshot_scan, snapshot_update
from repro.runtime.scheduler import Execution, explore_schedules, run_random


def _values(memory, name, n):
    arr = memory.register_array(name)
    return tuple(e[1] if e is not None else None for e in arr.snapshot_all())


def update_then_scan_factory(n):
    def make(pid):
        def body():
            yield from snapshot_update("S", n, pid, f"w{pid}")
            view = yield from snapshot_scan("S", n, pid)
            yield ("decide", view)

        return body()

    return {pid: (lambda p: make(p)) for pid in range(n)}


class InstrumentedRun:
    """Replay a schedule, recording the register-state history and the
    step interval of each process's final scan."""

    def __init__(self, n, factories, schedule=None, seed=None):
        import random

        self.n = n
        procs = {pid: make(pid) for pid, make in factories.items()}
        self.execution = Execution(n, procs)
        self.history = [(None,) * n]
        rng = random.Random(seed) if seed is not None else None
        idx = 0
        while not self.execution.done():
            if schedule is not None and idx < len(schedule):
                pid = schedule[idx]
                if pid not in self.execution.runnable():
                    pid = self.execution.runnable()[0]
            elif schedule is not None:
                pid = self.execution.runnable()[0]
            else:
                pid = rng.choice(self.execution.runnable())
            self.execution.step(pid)
            self.history.append(_values(self.execution.memory, "S", n))
            idx += 1

    def check_decisions_in_history(self):
        states = set(self.history)
        for pid, view in self.execution.trace.decisions.items():
            assert tuple(view) in states, (
                f"scan of {pid} returned {view!r}, never a register state"
            )


class TestTwoProcessesExhaustive:
    def test_all_interleavings_linearizable(self):
        n = 2
        factories = update_then_scan_factory(n)
        count = 0
        for trace in explore_schedules(n, factories, max_executions=400):
            # replay the schedule with instrumentation
            run = InstrumentedRun(n, factories, schedule=trace.schedule)
            run.check_decisions_in_history()
            count += 1
        assert count > 50  # many interleavings actually explored

    def test_scan_sees_own_write(self):
        n = 2
        factories = update_then_scan_factory(n)
        for trace in explore_schedules(n, factories, max_executions=200):
            for pid, view in trace.decisions.items():
                assert view[pid] == f"w{pid}"


class TestThreeProcessesRandom:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_schedules_linearizable(self, seed):
        n = 3
        factories = update_then_scan_factory(n)
        run = InstrumentedRun(n, factories, seed=seed)
        run.check_decisions_in_history()

    def test_solo_run_sees_exactly_self(self):
        n = 3
        factories = update_then_scan_factory(n)
        del factories[1], factories[2]
        run = InstrumentedRun(n, factories, seed=0)
        (view,) = run.execution.trace.decisions.values()
        assert view == ("w0", None, None)


class TestRepeatedUpdates:
    def test_monotone_views_per_process(self):
        """Successive scans by one process never go backwards."""
        n = 2

        def writer(pid):
            def body():
                for k in range(3):
                    yield from snapshot_update("S", n, pid, k)
                yield ("decide", "done")

            return body()

        def scanner(pid):
            def body():
                views = []
                for _ in range(4):
                    v = yield from snapshot_scan("S", n, pid)
                    views.append(v)
                yield ("decide", tuple(views))

            return body()

        factories = {0: writer, 1: scanner}
        for seed in range(40):
            trace = run_random(n, factories, seed=seed)
            views = trace.decisions[1]
            seen = [v[0] for v in views]
            numeric = [x for x in seen if x is not None]
            assert numeric == sorted(numeric)
