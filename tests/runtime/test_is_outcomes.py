"""Every ordered partition is realizable: block schedules reach all of Ch¹.

The standard chromatic subdivision's facets are indexed by ordered set
partitions (Section 2.4).  This test *constructs*, for each of the 13
ordered partitions of three processes, a block schedule (round-robin
within a block, blocks sequential) and checks the Borowsky–Gafni-based
full-information protocol produces exactly that partition's views — i.e.
the shared-memory substrate realizes the whole of Ch¹, not just a sample.
"""

import itertools

from repro.runtime.full_information import make_full_information_factories
from repro.runtime.scheduler import Execution
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import Simplex, Vertex, chrom
from repro.topology.subdivision import iterated_chromatic_subdivision, ordered_partitions

INPUT = chrom((0, "x"), (1, "y"), (2, "z"))


def run_block_schedule(factories, n, blocks):
    """Round-robin within each block; blocks strictly sequential."""
    execution = Execution(n, {pid: make(pid) for pid, make in factories.items()})
    for block in blocks:
        members = sorted(block)
        while any(pid in execution.runnable() for pid in members):
            for pid in members:
                if pid in execution.runnable():
                    execution.step(pid)
    while not execution.done():  # safety: nothing should remain
        execution.step(execution.runnable()[0])
    return execution.trace


def expected_facet(blocks):
    """The Ch¹ facet of an ordered partition."""
    by_color = {v.color: v for v in INPUT.vertices}
    seen = set()
    verts = []
    for block in blocks:
        seen |= {by_color[c] for c in block}
        view = Simplex(seen)
        verts.extend(Vertex(c, view) for c in block)
    return Simplex(verts)


class TestAllOrderedPartitionsRealizable:
    def test_each_partition_reached_by_its_block_schedule(self):
        factories, n = make_full_information_factories(INPUT, rounds=1)
        for blocks in ordered_partitions({0, 1, 2}):
            trace = run_block_schedule(factories, n, blocks)
            got = Simplex(trace.decisions.values())
            want = expected_facet(blocks)
            assert got == want, f"partition {blocks}: got {got!r}, want {want!r}"

    def test_thirteen_distinct_outcomes(self):
        factories, n = make_full_information_factories(INPUT, rounds=1)
        outcomes = set()
        for blocks in ordered_partitions({0, 1, 2}):
            trace = run_block_schedule(factories, n, blocks)
            outcomes.add(Simplex(trace.decisions.values()))
        sub = iterated_chromatic_subdivision(ChromaticComplex([INPUT]), 1)
        assert outcomes == set(sub.complex.facets)

    def test_two_process_partitions(self):
        edge = chrom((0, "x"), (1, "y"))
        factories, n = make_full_information_factories(edge, rounds=1)
        outcomes = set()
        for blocks in ordered_partitions({0, 1}):
            trace = run_block_schedule(factories, n, blocks)
            outcomes.add(Simplex(trace.decisions.values()))
        assert len(outcomes) == 3
