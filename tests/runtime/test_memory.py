"""Unit tests for shared-memory objects."""

import pytest

from repro.runtime.memory import (
    MemoryError_,
    RegisterArray,
    SharedMemory,
    SnapshotObject,
)


class TestRegisterArray:
    def test_write_read(self):
        r = RegisterArray(3)
        r.write(1, "hello")
        assert r.read(1) == "hello"
        assert r.read(0) is None

    def test_bounds_checked(self):
        r = RegisterArray(2)
        with pytest.raises(MemoryError_):
            r.write(2, "x")
        with pytest.raises(MemoryError_):
            r.read(-1)

    def test_snapshot_all(self):
        r = RegisterArray(2)
        r.write(0, "a")
        assert r.snapshot_all() == ("a", None)


class TestSnapshotObject:
    def test_update_scan(self):
        s = SnapshotObject(3)
        s.update(2, 42)
        assert s.scan() == (None, None, 42)

    def test_scan_is_copy(self):
        s = SnapshotObject(2)
        snap = s.scan()
        s.update(0, "later")
        assert snap == (None, None)

    def test_bounds(self):
        s = SnapshotObject(1)
        with pytest.raises(MemoryError_):
            s.update(1, "x")


class TestSharedMemory:
    def test_objects_created_on_demand(self):
        m = SharedMemory(3)
        r = m.register_array("R")
        assert m.register_array("R") is r
        s = m.snapshot_object("S")
        assert m.snapshot_object("S") is s

    def test_type_confusion_rejected(self):
        m = SharedMemory(2)
        m.register_array("X")
        with pytest.raises(MemoryError_):
            m.snapshot_object("X")

    def test_get_unknown(self):
        m = SharedMemory(2)
        with pytest.raises(MemoryError_):
            m.get("nope")

    def test_object_names(self):
        m = SharedMemory(2)
        m.register_array("b")
        m.snapshot_object("a")
        assert m.object_names() == ("a", "b")
