"""Unit tests for empirical protocol complexes."""

import pytest

from repro.runtime.protocol_complex import (
    reachable_views_complex,
    realizes_subdivision,
)
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import chrom
from repro.topology.subdivision import iterated_chromatic_subdivision

INPUT = chrom((0, "x"), (1, "y"), (2, "z"))
EDGE = chrom((0, "x"), (1, "y"))


class TestOneRound:
    def test_exactly_ch1_for_three_processes(self):
        # block schedules alone cover all 13 facets
        empirical = reachable_views_complex(INPUT, rounds=1, random_schedules=0)
        sub = iterated_chromatic_subdivision(ChromaticComplex([INPUT]), 1)
        assert set(empirical.facets) == set(sub.complex.facets)

    def test_exactly_ch1_for_two_processes(self):
        empirical = reachable_views_complex(
            EDGE, rounds=1, random_schedules=0, exhaustive_limit=200
        )
        sub = iterated_chromatic_subdivision(ChromaticComplex([EDGE]), 1)
        assert set(empirical.facets) == set(sub.complex.facets)

    def test_subcomplex_relation(self):
        assert realizes_subdivision(INPUT, rounds=1, random_schedules=50)


class TestTwoRounds:
    def test_random_views_inside_ch2(self):
        assert realizes_subdivision(INPUT, rounds=2, random_schedules=60)

    def test_two_process_two_rounds_exact(self):
        empirical = reachable_views_complex(
            EDGE, rounds=2, random_schedules=300, block_schedules=False
        )
        sub = iterated_chromatic_subdivision(ChromaticComplex([EDGE]), 2)
        assert empirical.is_subcomplex_of(sub.complex)
        # Ch² of an edge has 9 facets; random schedules reach most of them
        assert len(empirical.facets) >= 5


class TestZeroRounds:
    def test_identity(self):
        empirical = reachable_views_complex(INPUT, rounds=0, random_schedules=3)
        assert set(empirical.facets) == {INPUT}
