"""Unit tests for end-to-end protocol synthesis."""

import pytest

import repro.runtime.synthesis as synthesis
from repro.runtime.simulation import validate_protocol
from repro.runtime.synthesis import (
    SynthesisError,
    _map_decision,
    synthesize_protocol,
)
from repro.solvability.map_search import SearchBudgetExceeded
from repro.solvability import decide_solvability
from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    identity_task,
    loop_agreement_task,
    path_task,
    set_agreement_task,
    triangle_loop,
)


class TestDirectMode:
    def test_identity(self, identity3):
        p = synthesize_protocol(identity3)
        assert p.mode == "direct"
        assert p.rounds == 0
        report = validate_protocol(identity3, p.factories, random_runs=5)
        assert report.ok

    def test_path_task_needs_one_round(self):
        t = path_task(3)
        p = synthesize_protocol(t)
        assert p.mode == "direct"
        assert p.rounds == 1
        assert validate_protocol(t, p.factories, random_runs=10).ok

    def test_constant(self):
        t = constant_task(3)
        p = synthesize_protocol(t)
        assert validate_protocol(t, p.factories, random_runs=5).ok


class TestFigure7Mode:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: identity_task(3),
            lambda: set_agreement_task(3, 3),
            lambda: loop_agreement_task(triangle_loop(True)),
        ],
    )
    def test_forced_figure7(self, make):
        task = make()
        p = synthesize_protocol(task, prefer_direct=False)
        assert p.mode == "figure-7"
        report = validate_protocol(task, p.factories, random_runs=8)
        assert report.ok, report.violations[:2]

    def test_verdict_reused(self, identity3):
        verdict = decide_solvability(identity3)
        p = synthesize_protocol(identity3, verdict=verdict, prefer_direct=False)
        assert p.verdict is verdict


class TestDirectSearchErrorHandling:
    """Regression: the direct-mode search swallowed *every* exception,
    silently converting genuine bugs into 'no chromatic witness'."""

    def test_genuine_bug_propagates(self, identity3, monkeypatch):
        def broken_find_map(*args, **kwargs):
            raise ValueError("genuine bug in the search")

        monkeypatch.setattr(synthesis, "find_map", broken_find_map)
        with pytest.raises(ValueError, match="genuine bug"):
            synthesize_protocol(identity3)

    def test_budget_exceeded_falls_back_with_reason(self, identity3, monkeypatch):
        def exhausted_find_map(*args, **kwargs):
            raise SearchBudgetExceeded("node budget blown")

        monkeypatch.setattr(synthesis, "find_map", exhausted_find_map)
        p = synthesize_protocol(identity3)
        assert p.mode == "figure-7"
        assert "budget" in p.fallback_reason
        assert p.verdict.stats.get("direct_search_r0_budget_exceeded") == 1.0

    def test_direct_protocol_has_no_fallback_reason(self, identity3):
        p = synthesize_protocol(identity3)
        assert p.mode == "direct"
        assert p.fallback_reason is None

    def test_forced_figure7_records_reason(self, identity3):
        p = synthesize_protocol(identity3, prefer_direct=False)
        assert p.fallback_reason == "direct mode disabled (prefer_direct=False)"


class TestMapDecisionStopIteration:
    """Regression: an inner generator ending without a ('decide', …) op
    surfaced as PEP-479 ``RuntimeError: generator raised StopIteration``."""

    @staticmethod
    def _drain(gen):
        op = gen.send(None)
        while True:
            op = gen.send(None)

    def test_undecided_inner_raises_synthesis_error(self):
        def undecided():
            yield ("write", "R", 1)
            return "gave-up"

        wrapped = _map_decision(undecided(), lambda v: v, pid=2)
        with pytest.raises(SynthesisError) as excinfo:
            self._drain(wrapped)
        message = str(excinfo.value)
        assert "process 2" in message
        assert "'gave-up'" in message
        assert "write" in message  # op-log context

    def test_not_an_opaque_runtime_error(self):
        def undecided():
            return
            yield  # pragma: no cover

        wrapped = _map_decision(undecided(), lambda v: v, pid=0)
        with pytest.raises(SynthesisError):
            next(wrapped)

    def test_decide_still_projected(self):
        def decides():
            yield ("write", "R", 1)
            yield ("decide", 21)

        wrapped = _map_decision(decides(), lambda v: 2 * v, pid=0)
        assert wrapped.send(None) == ("write", "R", 1)
        assert wrapped.send(None) == ("decide", 42)


class TestGuards:
    def test_unsolvable_rejected(self, consensus3):
        with pytest.raises(SynthesisError):
            synthesize_protocol(consensus3)

    def test_factories_reject_non_input(self, identity3):
        from repro.topology.simplex import chrom

        p = synthesize_protocol(identity3)
        with pytest.raises(SynthesisError):
            p.factories(chrom((0, "not-an-input")))

    def test_two_process_direct_only(self):
        # two-process solvable tasks must synthesize via the direct mode
        t = path_task(3)
        p = synthesize_protocol(t, prefer_direct=True)
        assert p.mode == "direct"
