"""Unit tests for end-to-end protocol synthesis."""

import pytest

from repro.runtime.simulation import validate_protocol
from repro.runtime.synthesis import SynthesisError, synthesize_protocol
from repro.solvability import decide_solvability
from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    identity_task,
    loop_agreement_task,
    path_task,
    set_agreement_task,
    triangle_loop,
)


class TestDirectMode:
    def test_identity(self, identity3):
        p = synthesize_protocol(identity3)
        assert p.mode == "direct"
        assert p.rounds == 0
        report = validate_protocol(identity3, p.factories, random_runs=5)
        assert report.ok

    def test_path_task_needs_one_round(self):
        t = path_task(3)
        p = synthesize_protocol(t)
        assert p.mode == "direct"
        assert p.rounds == 1
        assert validate_protocol(t, p.factories, random_runs=10).ok

    def test_constant(self):
        t = constant_task(3)
        p = synthesize_protocol(t)
        assert validate_protocol(t, p.factories, random_runs=5).ok


class TestFigure7Mode:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: identity_task(3),
            lambda: set_agreement_task(3, 3),
            lambda: loop_agreement_task(triangle_loop(True)),
        ],
    )
    def test_forced_figure7(self, make):
        task = make()
        p = synthesize_protocol(task, prefer_direct=False)
        assert p.mode == "figure-7"
        report = validate_protocol(task, p.factories, random_runs=8)
        assert report.ok, report.violations[:2]

    def test_verdict_reused(self, identity3):
        verdict = decide_solvability(identity3)
        p = synthesize_protocol(identity3, verdict=verdict, prefer_direct=False)
        assert p.verdict is verdict


class TestGuards:
    def test_unsolvable_rejected(self, consensus3):
        with pytest.raises(SynthesisError):
            synthesize_protocol(consensus3)

    def test_factories_reject_non_input(self, identity3):
        from repro.topology.simplex import chrom

        p = synthesize_protocol(identity3)
        with pytest.raises(SynthesisError):
            p.factories(chrom((0, "not-an-input")))

    def test_two_process_direct_only(self):
        # two-process solvable tasks must synthesize via the direct mode
        t = path_task(3)
        p = synthesize_protocol(t, prefer_direct=True)
        assert p.mode == "direct"
