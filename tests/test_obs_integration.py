"""End-to-end tracing tests over the instrumented decision pipeline.

Two guarantees are pinned here:

* a traced ``decide_solvability`` produces a schema-valid ``repro-trace/1``
  payload whose span tree covers the pipeline stages (transform,
  obstruction checks, witness search);
* the parallel census reports the **same** aggregate counters and cache
  hit/miss totals as the serial run on the same workload — the
  cross-process merge that motivated the whole layer (worker counters
  used to vanish with the worker process).
"""

import pytest

from repro import obs
from repro.analysis import parallel_census, run_census
from repro.solvability import Status, decide_solvability
from repro.tasks.zoo import (
    hourglass_task,
    identity_task,
    majority_consensus_task,
    pinwheel_task,
)
from repro.topology import cache_clear, diskstore


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.set_tracing(False)
    obs.reset_recorder()
    cache_clear()
    yield
    obs.set_tracing(False)
    obs.reset_recorder()
    cache_clear()


def _traced_decide(task, max_rounds=2):
    with obs.tracing():
        verdict = decide_solvability(task, max_rounds=max_rounds)
    return verdict, obs.get_recorder()


class TestTracedDecide:
    @pytest.mark.parametrize(
        "make", [majority_consensus_task, hourglass_task, pinwheel_task]
    )
    def test_zoo_decisions_export_valid_traces(self, make):
        task = make()
        verdict, recorder = _traced_decide(task)
        names = recorder.span_names()
        assert names[0] == "decide"
        assert "transform" in names
        # the decide span carries the verdict and the pipeline stages nest
        decide = recorder.find_span("decide")
        assert decide.attrs["status"] == verdict.status.value
        assert [c.name for c in decide.children][0] == "transform"
        payload = obs.build_trace(meta={"command": f"decide {task.name}"})
        assert obs.validate_trace(payload) == []

    def test_unsolvable_trace_covers_obstruction_stage(self):
        verdict, recorder = _traced_decide(majority_consensus_task())
        assert verdict.status is Status.UNSOLVABLE
        names = recorder.span_names()
        assert "obstructions" in names
        assert "obstruction.check" in names
        hits = [
            record.attrs
            for record in recorder.walk()
            if record.name == "obstruction.check" and record.attrs.get("hit")
        ]
        assert hits and hits[0]["kind"] == verdict.obstruction.kind
        counters = recorder.counters
        assert counters["decide.obstructions.checked"] >= 1
        assert counters[f"decide.obstructions.hit.{verdict.obstruction.kind}"] == 1

    def test_solvable_trace_covers_search_stage(self):
        verdict, recorder = _traced_decide(identity_task(3))
        assert verdict.status is Status.SOLVABLE
        names = recorder.span_names()
        assert "search" in names
        assert "search.round" in names
        search = recorder.find_span("search")
        assert search.attrs["witness_rounds"] == verdict.witness_rounds
        assert recorder.counters["decide.search.nodes"] > 0

    def test_split_spans_carry_per_facet_counts(self):
        verdict, recorder = _traced_decide(majority_consensus_task())
        facet_spans = [r for r in recorder.walk() if r.name == "split.facet"]
        assert facet_spans
        per_facet = [int(r.attrs["splits"]) for r in facet_spans]
        assert sum(per_facet) == int(verdict.stats["n_splits"]) == 42
        assert max(per_facet) == 12  # the budget is per-facet, and this
        # is the largest single-facet demand (see tests/splitting)

    def test_stats_backfill_matches_untraced_run(self):
        traced, _ = _traced_decide(hourglass_task())
        untraced = decide_solvability(hourglass_task(), max_rounds=2)
        assert traced.status is untraced.status
        assert set(traced.stats) == set(untraced.stats)


def _census_aggregates(workers, store_dir):
    """Run the same traced workload; returns (census, counters, cache, gauges).

    Each invocation gets its own persistent-store directory so every run
    is equally cold — otherwise the first run would warm the disk store
    and the second would report hit counters instead of miss/write ones.
    """
    obs.reset_recorder()
    cache_clear()
    with diskstore.store_at(str(store_dir)), obs.tracing():
        census = parallel_census(range(6), workers=workers, chunksize=2)
    recorder = obs.get_recorder()
    return (
        census.as_tuple(),
        recorder.aggregate_counters(),
        recorder.aggregate_cache(),
        recorder.aggregate_gauges(),
    )


class TestParallelAggregation:
    def test_workers_counters_match_serial(self, tmp_path):
        # regression: before the worker-snapshot merge, the parallel run's
        # recorder was empty — every counter and cache hit accumulated in
        # the pool workers was lost with the worker process.
        serial_census, serial_counters, serial_cache, _ = _census_aggregates(
            1, tmp_path / "serial"
        )
        parallel_census_t, parallel_counters, parallel_cache, _ = _census_aggregates(
            2, tmp_path / "parallel"
        )
        assert parallel_census_t == serial_census
        assert parallel_counters == serial_counters
        assert parallel_counters["census.tasks"] == 6.0
        # cache hit/miss totals agree query-by-query across process counts
        assert set(parallel_cache) == set(serial_cache)
        for query in serial_cache:
            assert parallel_cache[query]["hits"] == serial_cache[query]["hits"]
            assert (
                parallel_cache[query]["misses"] == serial_cache[query]["misses"]
            )

    def test_workers_gauge_aggregates_match_serial(self, tmp_path):
        # the census's max-splits gauge is seed-determined, so under the
        # default "max" merge policy the aggregate must not depend on how
        # the pool partitions the seeds — workers=1 and workers=N agree
        *_, serial_gauges = _census_aggregates(1, tmp_path / "serial")
        *_, parallel_gauges = _census_aggregates(2, tmp_path / "parallel")
        assert "census.max_splits" in serial_gauges
        assert parallel_gauges == serial_gauges

    def test_parallel_trace_carries_worker_snapshots(self):
        obs.reset_recorder()
        cache_clear()
        with obs.tracing():
            parallel_census(range(6), workers=2, chunksize=2)
        payload = obs.build_trace(meta={"command": "census"})
        assert obs.validate_trace(payload) == []
        assert len(payload["workers"]) == 3  # one snapshot per chunk
        for snap in payload["workers"]:
            assert [s["name"] for s in snap["spans"]] == ["census"]

    def test_untraced_parallel_census_sends_no_snapshots(self):
        obs.reset_recorder()
        merged = parallel_census(range(4), workers=2, chunksize=2)
        serial = run_census(range(4))
        assert merged.as_tuple() == serial.as_tuple()
        assert obs.get_recorder().worker_snapshots == []
