"""Unit tests for the background resource sampler and slope fitting.

The soak gate is only as sound as these pieces: samples must land in
the ring deterministically (injected clock, explicit timestamps), a
broken source must not kill the rest of a sample, and the least-squares
slope must be exact on synthetic series.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry, validate_metrics
from repro.obs.sampler import (
    ResourceSampler,
    fit_slope,
    read_rss_bytes,
    series_slopes,
)


class TestReadRss:
    def test_reads_a_plausible_resident_size(self):
        rss = read_rss_bytes()
        # a running CPython interpreter is somewhere in 1 MiB .. 100 GiB
        assert 1 << 20 < rss < 100 << 30


class TestResourceSampler:
    def test_sample_once_records_all_sources(self):
        sampler = ResourceSampler({"a": lambda: 1.0, "b": lambda: 2.0})
        values = sampler.sample_once(at=sampler._started)
        assert values == {"a": 1.0, "b": 2.0}
        assert len(sampler) == 1
        assert sampler.points("a") == [(0.0, 1.0)]

    def test_broken_source_skips_only_itself(self):
        sampler = ResourceSampler(
            {"good": lambda: 7.0, "bad": lambda: 1 / 0}
        )
        values = sampler.sample_once()
        assert values == {"good": 7.0}
        assert sampler.points("bad") == []

    def test_ring_is_bounded(self):
        sampler = ResourceSampler({"x": lambda: 0.0}, capacity=3)
        for i in range(10):
            sampler.sample_once(at=sampler._started + i)
        assert len(sampler) == 3
        assert [t for t, _ in sampler.points("x")] == [7.0, 8.0, 9.0]

    def test_series_export_is_a_valid_resources_section(self):
        sampler = ResourceSampler({"x": lambda: 5.0}, interval=0.5)
        sampler.sample_once(at=sampler._started)
        series = sampler.series()
        assert series["interval_seconds"] == 0.5
        assert series["names"] == ["x"]
        assert series["samples"] == [{"t": 0.0, "values": {"x": 5.0}}]
        payload = MetricsRegistry().build(resources=series)
        assert validate_metrics(payload) == []

    def test_thread_samples_and_stop_appends_endpoint(self):
        counter = [0]

        def source():
            counter[0] += 1
            return float(counter[0])

        sampler = ResourceSampler({"n": source}, interval=0.01)
        with sampler:
            deadline = time.monotonic() + 2.0
            while len(sampler) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        n_after_stop = len(sampler)
        assert n_after_stop >= 3  # t=0 anchor + ticks + stop endpoint
        time.sleep(0.05)
        assert len(sampler) == n_after_stop  # the thread really stopped

    def test_start_twice_is_an_error(self):
        sampler = ResourceSampler({"x": lambda: 0.0}, interval=10.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ResourceSampler({}, interval=0.0)
        with pytest.raises(ValueError):
            ResourceSampler({}, capacity=0)


class TestFitSlope:
    def test_exact_on_a_line(self):
        points = [(float(t), 3.0 * t + 10.0) for t in range(10)]
        assert fit_slope(points) == pytest.approx(3.0)

    def test_flat_series_is_zero(self):
        assert fit_slope([(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]) == 0.0

    def test_degenerate_inputs_read_as_no_growth(self):
        assert fit_slope([]) == 0.0
        assert fit_slope([(1.0, 2.0)]) == 0.0
        assert fit_slope([(1.0, 2.0), (1.0, 9.0)]) == 0.0  # zero t-variance

    def test_sawtooth_noise_averages_out(self):
        # +/-1 sawtooth around a flat line: max-min would say "growth 2",
        # least squares says ~0
        points = [(float(t), 100.0 + (1.0 if t % 2 else -1.0)) for t in range(20)]
        assert abs(fit_slope(points)) < 0.05


class TestSeriesSlopes:
    def _resources(self, n=20, slope=2.0, warm_bump=50.0):
        samples = []
        for t in range(n):
            value = slope * t + (warm_bump if t < 3 else 0.0)
            samples.append({"t": float(t), "values": {"x": value}})
        return {"samples": samples}

    def test_warmup_fraction_excludes_the_transient(self):
        slopes = series_slopes(self._resources(), warmup_fraction=0.25)
        assert slopes["x"] == pytest.approx(2.0)

    def test_zero_warmup_sees_the_transient(self):
        biased = series_slopes(self._resources(), warmup_fraction=0.0)["x"]
        clean = series_slopes(self._resources(), warmup_fraction=0.25)["x"]
        assert abs(biased - 2.0) > abs(clean - 2.0)

    def test_empty_resources_yield_no_slopes(self):
        assert series_slopes({"samples": []}) == {}
        assert series_slopes({}) == {}

    def test_rejects_bad_warmup_fraction(self):
        with pytest.raises(ValueError):
            series_slopes(self._resources(), warmup_fraction=1.0)
