"""Round-trip fuzz: random recorders must export schema-valid traces.

Satellite of the telemetry-store PR: drive the recorder with randomized
span trees, counters, gauges (random merge policies) and worker
snapshots, then check that every ``build_trace`` payload (a) passes
``validate_trace``, (b) survives a JSON dump/load unchanged, and (c)
condenses into a valid ``repro-run/1`` record.  The validator recomputes
aggregates, so any drift between the recorder's merge logic and the
schema's would surface here as a seed-numbered failure.
"""

import json
import random

import pytest

from repro import obs
from repro.obs import GAUGE_POLICIES


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.set_tracing(False)
    obs.reset_recorder()
    yield
    obs.set_tracing(False)
    obs.reset_recorder()


NAMES = ["decide", "transform", "split", "search", "obstruction", "conform"]


def _random_spans(rng: random.Random, depth: int = 0) -> None:
    for _ in range(rng.randint(1, 3)):
        with obs.span(rng.choice(NAMES), seed=rng.randint(0, 99)):
            if rng.random() < 0.5:
                obs.counter_add(rng.choice(NAMES) + ".count", rng.randint(1, 9))
            if rng.random() < 0.3:
                obs.gauge_set(rng.choice(NAMES) + ".gauge", rng.uniform(0, 100))
            if depth < 3 and rng.random() < 0.6:
                _random_spans(rng, depth + 1)


def _random_recorder(rng: random.Random) -> None:
    # random explicit merge policies for a few gauge names
    for name in rng.sample(NAMES, rng.randint(0, 3)):
        obs.get_recorder().set_gauge_policy(
            name + ".gauge", rng.choice(sorted(GAUGE_POLICIES))
        )
    with obs.tracing():
        _random_spans(rng)
        for _ in range(rng.randint(0, 4)):
            obs.gauge_set(rng.choice(NAMES) + ".gauge", rng.uniform(0, 100))
    for _ in range(rng.randint(0, 2)):
        with obs.capture_worker() as capture:
            with obs.tracing():
                _random_spans(rng)
                if rng.random() < 0.5:
                    obs.gauge_set(rng.choice(NAMES) + ".gauge", rng.uniform(0, 100))
        obs.merge_worker_snapshot(capture.snapshot)


@pytest.mark.parametrize("seed", range(25))
def test_random_recorders_roundtrip(seed):
    rng = random.Random(seed)
    _random_recorder(rng)
    payload = obs.build_trace(meta={"command": f"fuzz-{seed}"})

    problems = obs.validate_trace(payload)
    assert problems == [], f"seed {seed}: {problems}"

    reloaded = json.loads(json.dumps(payload))
    assert reloaded == payload, f"seed {seed}: JSON round-trip changed the payload"
    assert obs.validate_trace(reloaded) == []

    record = obs.build_run_record(reloaded, command="fuzz", task=None)
    assert obs.validate_run_record(record) == [], f"seed {seed}"


@pytest.mark.parametrize("seed", range(10))
def test_random_traces_export_profiles(seed):
    """The profiling exports must accept anything the recorder produces."""
    rng = random.Random(1000 + seed)
    _random_recorder(rng)
    payload = obs.build_trace()
    for line in obs.folded_stacks(payload):
        stack, count = line.rsplit(" ", 1)
        assert stack and int(count) >= 0
    trace = obs.chrome_trace(payload)
    assert all(e["dur"] >= 0 for e in trace["traceEvents"] if e["ph"] == "X")
