"""Unit tests for the telemetry run store and the regression sentinel.

Covers ``repro.obs.store`` (``repro-run/1`` records, the append-only
JSONL store, run references, bench ingest) and ``repro.obs.trend`` (the
noise-tolerant threshold model behind ``python -m repro obs diff``).
The acceptance-critical behaviours pinned here: a self-vs-self diff has
zero regressions, and doubling one span's wall time trips the sentinel.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    Thresholds,
    append_run,
    bench_run_record,
    build_run_record,
    diff_records,
    find_run,
    format_diff,
    format_trend,
    latest_run,
    load_record_file,
    load_store,
    regressions,
    resolve_store_path,
    validate_run_record,
)
from repro.obs.store import DEFAULT_PATH, ENV_VAR


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.set_tracing(False)
    obs.reset_recorder()
    yield
    obs.set_tracing(False)
    obs.reset_recorder()


def _trace_payload(wall: float = 0.5, hits: int = 8, misses: int = 2):
    """A hand-built, schema-light trace payload for record condensation."""
    return {
        "schema": obs.SCHEMA,
        "created_unix": 1700000000.0,
        "spans": [
            {
                "name": "decide",
                "wall_seconds": wall,
                "cpu_seconds": wall * 0.9,
                "children": [],
            }
        ],
        "aggregate": {
            "counters": {"decide.splits": 42.0},
            "gauges": {"census.max_splits": 3.0},
            "cache": {
                "is_simplex": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / (hits + misses),
                }
            },
        },
    }


def _record(wall: float = 0.5, **kwargs):
    defaults = dict(command="decide", task="majority", argv=["decide", "majority"])
    defaults.update(kwargs)
    return build_run_record(_trace_payload(wall=wall), **defaults)


class TestRunRecord:
    def test_build_condenses_trace_aggregates(self):
        record = _record()
        assert record["schema"] == "repro-run/1"
        assert validate_run_record(record) == []
        assert record["command"] == "decide"
        assert record["task"] == "majority"
        assert record["spans"]["decide"]["wall_seconds"] == 0.5
        assert record["spans"]["decide"]["count"] == 1
        assert record["counters"] == {"decide.splits": 42.0}
        assert record["gauges"] == {"census.max_splits": 3.0}
        assert record["cache"]["is_simplex"]["hit_rate"] == 0.8
        assert record["host"]["hostname"]

    def test_run_id_is_a_content_hash(self):
        a, b = _record(), _record()
        assert a["run_id"] == b["run_id"]
        assert _record(wall=0.6)["run_id"] != a["run_id"]

    def test_real_recorded_trace_condenses(self):
        with obs.tracing():
            with obs.span("decide"):
                obs.counter_add("splits", 2.0)
        record = build_run_record(obs.build_trace(), command="decide")
        assert validate_run_record(record) == []
        assert record["counters"]["splits"] == 2.0

    def test_validate_rejects_malformed_records(self):
        good = json.loads(json.dumps(_record()))
        assert validate_run_record(None) != []
        for mutate in (
            lambda r: r.update(schema="repro-run/0"),
            lambda r: r.update(run_id=""),
            lambda r: r.update(command=""),
            lambda r: r.update(argv="decide majority"),
            lambda r: r.update(task=7),
            lambda r: r.update(host="laptop"),
            lambda r: r["spans"]["decide"].update(wall_seconds=-1.0),
            lambda r: r["spans"]["decide"].update(count=0),
            lambda r: r["counters"].update(bad=True),
            lambda r: r["cache"]["is_simplex"].update(hit_rate=0.5),
            lambda r: r["cache"]["is_simplex"].update(hits=-1),
            lambda r: r.update(meta=None),
        ):
            record = json.loads(json.dumps(good))
            mutate(record)
            assert validate_run_record(record) != [], mutate


class TestStore:
    def test_resolve_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_store_path() == DEFAULT_PATH
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env.jsonl"))
        assert resolve_store_path() == str(tmp_path / "env.jsonl")
        assert resolve_store_path("flag.jsonl") == "flag.jsonl"

    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "nested" / "telemetry.jsonl")
        append_run(_record(wall=0.5), path)
        append_run(_record(wall=0.7), path)
        records, problems = load_store(path)
        assert problems == []
        assert [r["spans"]["decide"]["wall_seconds"] for r in records] == [0.5, 0.7]

    def test_append_rejects_invalid_record(self, tmp_path):
        record = _record()
        record["command"] = ""
        with pytest.raises(ValueError, match="invalid run record"):
            append_run(record, str(tmp_path / "t.jsonl"))

    def test_missing_store_is_empty(self, tmp_path):
        assert load_store(str(tmp_path / "absent.jsonl")) == ([], [])

    def test_bad_lines_become_problems_not_crashes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        append_run(_record(), str(path))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{half-written\n")
            fh.write(json.dumps({"schema": "repro-run/1"}) + "\n")
        records, problems = load_store(str(path))
        assert len(records) == 1
        assert len(problems) == 2
        assert any("not JSON" in p for p in problems)
        assert any("invalid record" in p for p in problems)

    def test_find_run_by_prefix_and_index(self, tmp_path):
        records = [_record(wall=w) for w in (0.1, 0.2, 0.3)]
        first = records[0]
        assert find_run(records, first["run_id"][:6]) is first
        # negative indices can never collide with a hex id prefix
        assert find_run(records, "-3") is first
        assert find_run(records, "-1") is records[-1]
        with pytest.raises(ValueError, match="no run with id prefix"):
            find_run(records, "zzzz")
        with pytest.raises(ValueError, match="out of range"):
            find_run(records, "-99")

    def test_find_run_ambiguous_prefix_is_an_error(self):
        records = [_record(), _record()]  # identical content hash
        with pytest.raises(ValueError, match="ambiguous"):
            find_run(records, records[0]["run_id"][:4])

    def test_latest_run_filters_by_command(self):
        decide = _record(wall=0.2)
        census = _record(wall=0.9, command="census", task=None)
        census["created_unix"] += 100
        assert latest_run([decide, census]) is census
        assert latest_run([decide, census], command="decide") is decide
        assert latest_run([], command="decide") is None


class TestBenchIngest:
    REPORT = {
        "schema": "repro-perf/1",
        "suite": "perf_core",
        "created_unix": 1700000000.0,
        "machine": {"python": "3.11.7", "cpu_count": 4},
        "results": [
            {
                "name": "decide_zoo",
                "best_seconds": 1.25,
                "repeats": 3,
                "counters": {"tasks": 12},
            }
        ],
        "derived": {"cache_speedup": 3.5},
    }

    def test_bench_report_becomes_a_valid_record(self):
        record = bench_run_record(self.REPORT, source="BENCH_perf_core.json")
        assert validate_run_record(record) == []
        assert record["command"] == "bench perf_core"
        assert record["spans"]["decide_zoo"]["wall_seconds"] == 1.25
        assert record["spans"]["decide_zoo"]["count"] == 3
        assert record["counters"]["decide_zoo.tasks"] == 12.0
        assert record["gauges"]["cache_speedup"] == 3.5
        assert record["meta"]["source"] == "BENCH_perf_core.json"

    def test_load_record_file_auto_converts_perf_reports(self, tmp_path):
        path = tmp_path / "BENCH_perf_core.json"
        path.write_text(json.dumps(self.REPORT))
        record = load_record_file(str(path))
        assert record["schema"] == "repro-run/1"
        assert record["command"] == "bench perf_core"

    def test_load_record_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "unrelated/1"}))
        with pytest.raises(ValueError, match="invalid run record"):
            load_record_file(str(path))


class TestDiff:
    def test_self_vs_self_has_zero_regressions(self):
        record = _record()
        deltas = diff_records(record, record)
        assert regressions(deltas) == []
        assert all(d.status == "ok" for d in deltas)

    def test_doubled_span_wall_is_a_regression(self):
        before, after = _record(wall=0.5), _record(wall=1.0)
        bad = regressions(diff_records(before, after))
        assert [d.name for d in bad] == ["decide"]
        assert "+100%" in bad[0].reason

    def test_min_runtime_floor_swallows_micro_span_noise(self):
        # 2ms -> 40ms is a 20x blowup but still under the 50ms floor
        deltas = diff_records(_record(wall=0.002), _record(wall=0.040))
        assert regressions(deltas) == []

    def test_zero_baseline_to_real_work_gates(self):
        deltas = diff_records(_record(wall=0.0), _record(wall=0.5))
        assert [d.name for d in regressions(deltas)] == ["decide"]

    def test_within_tolerance_growth_is_ok(self):
        deltas = diff_records(_record(wall=0.50), _record(wall=0.60))
        assert regressions(deltas) == []

    def test_big_shrink_is_an_improvement_not_a_gate(self):
        deltas = diff_records(_record(wall=1.0), _record(wall=0.5))
        spans = [d for d in deltas if d.kind == "span"]
        assert [d.status for d in spans] == ["improvement"]

    def test_counter_growth_beyond_tolerance_gates(self):
        before, after = _record(), _record()
        after["counters"]["decide.splits"] = 60.0  # 42 -> 60 = +43%
        bad = regressions(diff_records(before, after))
        assert [d.name for d in bad] == ["decide.splits"]

    def test_cache_hit_rate_drop_is_absolute(self):
        before = build_run_record(
            _trace_payload(hits=8, misses=2), command="decide"
        )
        after = build_run_record(
            _trace_payload(hits=5, misses=5), command="decide"
        )
        bad = regressions(diff_records(before, after))
        assert [d.name for d in bad] == ["is_simplex.hit_rate"]
        # and a drop within tolerance passes
        ok = diff_records(
            before,
            build_run_record(_trace_payload(hits=78, misses=22), command="decide"),
        )
        assert regressions(ok) == []

    def test_new_and_gone_metrics_never_gate(self):
        before, after = _record(), _record()
        del before["counters"]["decide.splits"]
        after["spans"]["synthesize"] = {
            "wall_seconds": 9.0,
            "cpu_seconds": 9.0,
            "count": 1,
        }
        deltas = diff_records(before, after)
        assert regressions(deltas) == []
        statuses = {d.name: d.status for d in deltas}
        assert statuses["synthesize"] == "new"
        assert statuses["decide.splits"] == "new"

    def test_gauges_are_informational_only(self):
        before, after = _record(), _record()
        after["gauges"]["census.max_splits"] = 900.0
        assert regressions(diff_records(before, after)) == []

    def test_custom_thresholds_tighten_the_gate(self):
        t = Thresholds(min_seconds=0.0, rel_tolerance=0.05)
        deltas = diff_records(_record(wall=0.50), _record(wall=0.60), t)
        assert len(regressions(deltas)) == 1

    def test_format_diff_renders_verdict(self):
        before, after = _record(wall=0.5), _record(wall=2.0)
        deltas = diff_records(before, after)
        text = format_diff(before, after, deltas)
        assert "REGRESSION" in text
        assert "verdict: 1 regression(s)" in text
        clean = format_diff(before, before, diff_records(before, before))
        assert "— clean" in clean


class TestForwardCompat:
    """Unrecognized metric kinds must be skipped, never raised on or gated.

    A store written by a newer repro (soak histograms, structured
    counters) has to stay diffable/trendable from this version —
    exactly the failure the satellite fix closes: ``obs diff`` used to
    crash on any entry without the expected numeric shape.
    """

    def _foreign(self, record):
        """Graft future-shaped entries onto a valid record."""
        record["spans"]["soak_latency"] = {"buckets": [[0.001, 5]], "count": 5}
        record["counters"]["soak.requests.by_op"] = {"decide": 3, "verify": 1}
        record["gauges"]["soak.passed_flag"] = True  # bools are not numbers
        record["cache"]["future_cache"] = {"hits": 3}  # no hit_rate
        record["histograms"] = [{"name": "soak_latency", "buckets": []}]
        return record

    def test_diff_skips_unrecognized_entries_on_both_sides(self):
        before, after = self._foreign(_record()), self._foreign(_record())
        deltas = diff_records(before, after)
        assert regressions(deltas) == []
        names = {d.name for d in deltas}
        assert "soak_latency" not in names
        assert "soak.requests.by_op" not in names
        assert "soak.passed_flag" not in names
        assert "future_cache.hit_rate" not in names
        # the recognized metrics still diff
        assert "decide" in names and "decide.splits" in names

    def test_one_sided_foreign_entry_is_not_new_or_gone(self):
        # present-but-unreadable must not flap as new/gone across a
        # downgrade-then-upgrade pair of runs
        before, after = _record(), self._foreign(_record())
        deltas = diff_records(before, after)
        assert regressions(deltas) == []
        assert "soak_latency" not in {d.name for d in deltas}

    def test_non_dict_sections_read_as_empty(self):
        before, after = _record(), _record()
        after["spans"] = "opaque blob"
        after["cache"] = None
        deltas = diff_records(before, after)
        # everything in before's spans/cache now reads as "gone" — which
        # never gates — and nothing raises
        assert regressions(deltas) == []

    def test_trend_renders_around_foreign_entries(self):
        records = [_record(wall=0.2), self._foreign(_record(wall=0.4))]
        records[1]["created_unix"] += 60
        text = format_trend(records)
        assert "span decide.wall_seconds:" in text
        assert "soak.passed_flag" not in text
        assert "future_cache" not in text


class TestTrend:
    def test_renders_history_with_bars(self):
        records = [_record(wall=w) for w in (0.2, 0.4)]
        records[1]["created_unix"] += 60
        text = format_trend(records)
        assert "2 run(s):" in text
        assert "span decide.wall_seconds:" in text
        assert "#" in text

    def test_metric_substring_filter(self):
        records = [_record()]
        text = format_trend(records, metric="hit_rate")
        assert "is_simplex.hit_rate" in text
        assert "decide.wall_seconds" not in text
        assert "no metric matches" in format_trend(records, metric="nonesuch")

    def test_command_filter_and_empty_store_message(self):
        decide = _record()
        census = _record(command="census", task=None)
        text = format_trend([decide, census], command="census")
        assert "1 run(s):" in text
        assert "empty" in format_trend([], command="census")
