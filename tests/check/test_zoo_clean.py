"""Every zoo task is clean under the full Level-1 checker.

This is the acceptance gate for the verifier itself: the zoo is the
repo's ground-truth task corpus, so any diagnostic on it is either a bug
in a zoo constructor or (far more likely) a false positive in a pass.

``--deep`` additionally pushes each task through the Section 3/4
transform and holds the result to the canonical/link invariants, which
the raw zoo tasks are *not* expected to satisfy.
"""

import pytest

from repro.__main__ import ZOO
from repro.check import check_task, run_domain_checks
from repro.splitting.pipeline import link_connected_form


@pytest.fixture(scope="module")
def zoo_tasks():
    return {name: fn() for name, fn in sorted(ZOO.items())}


def test_zoo_registry_nonempty(zoo_tasks):
    assert len(zoo_tasks) >= 15


@pytest.mark.parametrize("name", sorted(ZOO))
def test_structure_stage_clean(name):
    result = check_task(ZOO[name](), name=name)
    assert not result.diagnostics, [d.render() for d in result.diagnostics]
    assert result.ok
    assert result.passes_run > 0


@pytest.mark.parametrize("name", sorted(ZOO))
def test_deep_check_clean(name):
    # transform + canonical/link stages on the transformed task
    result = check_task(ZOO[name](), deep=True, name=name)
    assert not result.diagnostics, [d.render() for d in result.diagnostics]


def test_transformed_zoo_is_canonical_and_lap_free(zoo_tasks):
    # the deep check's canonical/link stages must actually bite on the
    # transformed tasks: run them directly and confirm zero findings
    for name, task in zoo_tasks.items():
        transformed = link_connected_form(task).task
        result = run_domain_checks(
            transformed, stages=("structure", "canonical", "link")
        )
        assert result.codes() == (), (name, result.codes())
