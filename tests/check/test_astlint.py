"""Level-2 AST lint: bad-snippet fixtures per RC4xx rule, plus the live tree.

Each snippet is linted as if it lived at a given relative path inside
``src/repro`` — the rules are path-scoped, so the same source can be
legal in ``topology/cache.py`` and a violation in ``analysis/census.py``.
"""

import textwrap

import pytest

from repro.check import CODES, LINT_RULES, lint_paths, lint_source
from repro.check.astlint import package_root


def codes_of(diags):
    return sorted(d.code for d in diags)


def lint(source, relpath="analysis/census.py"):
    return lint_source(textwrap.dedent(source), relpath=relpath)


class TestRC401InternedMutation:
    def test_attribute_write_fires(self):
        diags = lint("def f(s):\n    s.color = 3\n")
        assert codes_of(diags) == ["RC401"]
        assert "color" in diags[0].message
        assert diags[0].location.endswith(":2:5")  # 1-based column

    def test_object_setattr_fires(self):
        diags = lint("def f(v):\n    object.__setattr__(v, 'value', 9)\n")
        assert codes_of(diags) == ["RC401"]

    def test_object_delattr_fires(self):
        diags = lint("def f(v):\n    object.__delattr__(v, '_hash')\n")
        assert codes_of(diags) == ["RC401"]

    def test_allowed_in_topology_core(self):
        src = "def f(s):\n    object.__setattr__(s, 'color', 3)\n"
        assert lint(src, relpath="topology/simplex.py") == []

    def test_unrelated_attribute_ok(self):
        assert lint("def f(x):\n    x.payload = 3\n") == []


class TestRC402CachePrivacy:
    def test_cache_slot_read_fires(self):
        diags = lint("def f(s):\n    return s._cache\n")
        assert codes_of(diags) == ["RC402"]

    def test_cache_slot_write_fires(self):
        diags = lint("def f(s):\n    s._cache = None\n")
        assert codes_of(diags) == ["RC402"]

    def test_private_import_fires(self):
        diags = lint("from repro.topology.cache import _stats\n")
        assert codes_of(diags) == ["RC402"]

    def test_module_private_access_fires(self):
        diags = lint(
            """
            from repro.topology import cache
            def f():
                return cache._epoch
            """
        )
        assert codes_of(diags) == ["RC402"]

    def test_public_cache_api_ok(self):
        src = """
        from repro.topology.cache import cache_info, caching_disabled
        def f():
            return cache_info()
        """
        assert lint(src) == []

    def test_allowed_in_cache_module(self):
        assert lint("def f(s):\n    return s._cache\n", relpath="topology/cache.py") == []


class TestRC403DisabledCacheQuery:
    def test_memoized_call_in_disabled_block_fires(self):
        diags = lint(
            """
            from repro.topology.cache import caching_disabled
            def f(cx):
                with caching_disabled():
                    return cx.is_link_connected()
            """
        )
        assert codes_of(diags) == ["RC403"]
        assert "is_link_connected" in diags[0].message

    def test_call_after_block_ok(self):
        src = """
        from repro.topology.cache import caching_disabled
        def f(cx):
            with caching_disabled():
                pass
            return cx.is_link_connected()
        """
        assert lint(src) == []

    def test_non_memoized_call_inside_ok(self):
        src = """
        from repro.topology.cache import caching_disabled
        def f(cx):
            with caching_disabled():
                return cx.euler_characteristic()
        """
        assert lint(src) == []


class TestRC404FrozenConformance:
    def test_unfrozen_dataclass_in_policy_dir_fires(self):
        diags = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class P:
                x: int
            """,
            relpath="topology/thing.py",
        )
        assert codes_of(diags) == ["RC404"]

    def test_frozen_dataclass_ok(self):
        src = """
        from dataclasses import dataclass
        @dataclass(frozen=True)
        class P:
            x: int
        """
        assert lint(src, relpath="topology/thing.py") == []

    def test_unfrozen_outside_policy_dirs_ok(self):
        src = """
        from dataclasses import dataclass
        @dataclass
        class P:
            x: int
        """
        assert lint(src, relpath="analysis/census.py") == []

    def test_missing_slots_in_slotted_module_fires(self):
        diags = lint("class C:\n    pass\n", relpath="topology/maps.py")
        assert codes_of(diags) == ["RC404"]
        assert "__slots__" in diags[0].message

    def test_exception_class_exempt(self):
        src = "class BadThing(ValueError):\n    pass\n"
        assert lint(src, relpath="topology/maps.py") == []


class TestRC405Nondeterminism:
    def test_unseeded_random_call_fires(self):
        diags = lint("import random\nx = random.randint(0, 9)\n")
        assert codes_of(diags) == ["RC405"]

    def test_unseeded_rng_constructor_fires(self):
        diags = lint("import random\nrng = random.Random()\n")
        assert codes_of(diags) == ["RC405"]

    def test_seeded_rng_ok(self):
        assert lint("import random\nrng = random.Random(42)\n") == []

    def test_wall_clock_fires(self):
        diags = lint("import time\nt = time.time()\n")
        assert codes_of(diags) == ["RC405"]

    def test_outside_determinism_scope_ok(self):
        src = "import time\nt = time.time()\n"
        assert lint(src, relpath="solvability/decision.py") == []


class TestRC406BitcoreLoops:
    def test_constructor_in_loop_fires(self):
        diags = lint(
            """
            def masks(self, items):
                out = []
                for m in items:
                    out.append(Simplex(m))
                return out
            """,
            relpath="topology/bitcore.py",
        )
        assert codes_of(diags) == ["RC406"]
        assert "Simplex" in diags[0].message

    def test_dotted_constructor_in_while_fires(self):
        diags = lint(
            """
            def walk(queue):
                while queue:
                    v = simplex.Vertex(0, queue.pop())
            """,
            relpath="topology/bitcore.py",
        )
        assert codes_of(diags) == ["RC406"]

    def test_constructor_in_comprehension_fires(self):
        diags = lint(
            "def f(ms):\n    return [SimplicialComplex(m) for m in ms]\n",
            relpath="topology/bitcore.py",
        )
        assert codes_of(diags) == ["RC406"]

    def test_decode_helper_exempt(self):
        src = """
        def _decode_mask(self, mask):
            out = []
            while mask:
                out.append(Vertex(0, mask))
                mask &= mask - 1
            return frozenset(out)
        """
        assert lint(src, relpath="topology/bitcore.py") == []

    def test_constructor_outside_loop_ok(self):
        src = "def f(vs):\n    return Simplex(vs)\n"
        assert lint(src, relpath="topology/bitcore.py") == []

    def test_other_modules_unaffected(self):
        src = "def f(ms):\n    return [Simplex(m) for m in ms]\n"
        assert lint(src, relpath="topology/subdivision.py") == []

    def test_nested_function_resets_loop_context(self):
        # the loop belongs to the outer function; a nested def starts fresh
        src = """
        def f(items):
            for m in items:
                def g(vs):
                    return Simplex(vs)
        """
        assert lint(src, relpath="topology/bitcore.py") == []


class TestLiveTree:
    def test_package_sources_are_clean(self):
        diags = lint_paths()
        assert diags == [], [d.render() for d in diags]

    def test_package_root_is_repro(self):
        root = package_root()
        assert root.endswith("repro")


class TestRegistryConsistency:
    def test_lint_rules_are_registered_codes(self):
        for code in LINT_RULES:
            assert code in CODES
            assert CODES[code].level == 2

    def test_domain_passes_cover_their_codes(self):
        from repro.check import DOMAIN_PASSES

        covered = {c for p in DOMAIN_PASSES for c in p.codes}
        level1 = {c for c, info in CODES.items() if info.level == 1}
        assert covered == level1

    def test_syntax_error_propagates(self):
        # a file that does not parse is a build problem, not a lint finding
        with pytest.raises(SyntaxError):
            lint_source("def f(:\n", relpath="analysis/x.py")
