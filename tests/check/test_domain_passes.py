"""One deliberately corrupted variant per ``RCxxx`` domain code.

Every test builds a minimal malformed subject, runs the checker, and
asserts that *exactly* the expected code fires:

* ``error_codes`` of the full ``structure`` run equal the target (RC302
  is a warning, so it never pollutes the error set);
* a ``select``-restricted run reports the target code and nothing else;
* the diagnostic carries a concrete witness.

Where malformedness mathematically entails a second violation (an impure
or wrong-dimension image necessarily breaks color preservation too), the
test pins the co-firing explicitly.
"""

import pytest

from repro.check import check_complex, check_task, run_domain_checks
from repro.tasks.canonical import canonicalize_if_needed
from repro.tasks.task import Task
from repro.tasks.zoo import constant_task, hourglass_task
from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, chrom


def error_codes(result):
    return {d.code for d in result.diagnostics if d.severity == "error"}


def warning_codes(result):
    return {d.code for d in result.diagnostics if d.severity == "warning"}


def edge_task(images, output_facets, name="corrupt"):
    """A 2-process task over the single input edge {(0:0), (1:1)}."""
    i_edge = chrom((0, 0), (1, 1))
    inputs = ChromaticComplex([i_edge], name="I")
    outputs = SimplicialComplex(output_facets, name="O")
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name, check=False)


V00, V11 = chrom((0, 0)), chrom((1, 1))
EDGE = chrom((0, 0), (1, 1))
E1 = chrom((0, "a"), (1, "b"))
E2 = chrom((0, "c"), (1, "d"))


class TestRC101ImproperColoring:
    def test_fires_on_repeated_color_in_output(self):
        bad_facet = chrom((0, "a"), (0, "b"), (1, "c"))
        task = edge_task(
            {EDGE: [bad_facet], V00: [chrom((0, "a"))], V11: [chrom((1, "c"))]},
            [bad_facet],
        )
        result = run_domain_checks(task, select=["RC101"])
        assert result.codes() == ("RC101",)
        (diag,) = result.by_code("RC101")
        assert "(0:'a')" in diag.witness and "(0:'b')" in diag.witness
        assert "RC101" in error_codes(check_task(task))


class TestRC102NotMonotone:
    def test_fires_when_vertex_image_escapes_edge_image(self):
        task = edge_task(
            {EDGE: [E1], V00: [chrom((0, "c"))], V11: [chrom((1, "b"))]},
            [E1, E2],
        )
        result = check_task(task)
        assert error_codes(result) == {"RC102"}
        (diag,) = result.by_code("RC102")
        assert "face=" in diag.witness and "simplex=" in diag.witness

    def test_select_isolates(self):
        task = edge_task(
            {EDGE: [E1], V00: [chrom((0, "c"))], V11: [chrom((1, "b"))]},
            [E1, E2],
        )
        assert run_domain_checks(task, select=["RC102"]).codes() == ("RC102",)


class TestRC103NameNotPreserved:
    def test_fires_on_color_swap(self):
        swapped = chrom((0, "a"), (2, "b"))
        task = edge_task(
            {EDGE: [swapped], V00: [chrom((0, "a"))], V11: [chrom((2, "b"))]},
            [swapped],
        )
        result = check_task(task)
        assert error_codes(result) == {"RC103"}
        assert any("colors" in d.message for d in result.by_code("RC103"))


class TestRC104DimensionMismatch:
    def test_fires_on_unequal_dimensions(self):
        triangle = chrom((0, "a"), (1, "b"), (2, "c"))
        out_edge = chrom((0, "a"), (1, "b"))
        task = edge_task({EDGE: [out_edge], V00: [chrom((0, "a"))], V11: [chrom((1, "b"))]},
                         [triangle])
        result = check_task(task)
        assert error_codes(result) == {"RC104"}
        (diag,) = result.by_code("RC104")
        assert "dim(I)=1" in diag.witness and "dim(O)=2" in diag.witness


class TestRC105ImpureComplex:
    def test_fires_on_impure_input(self):
        tri = chrom((0, 0), (1, 1), (2, 2))
        lone = chrom((0, 9))
        inputs = ChromaticComplex([tri, lone], name="I")
        out_tri = chrom((0, "a"), (1, "b"), (2, "c"))
        out_lone = chrom((0, "z"))
        outputs = ChromaticComplex([out_tri, out_lone], name="O")
        images = {s: SimplicialComplex([]) for s in inputs.simplices()}
        for s in tri.faces():
            images[s] = SimplicialComplex(
                [Simplex(out_tri.vertex_of_color(c) for c in s.colors())]
            )
        images[lone] = SimplicialComplex([out_lone])
        delta = CarrierMap(inputs, outputs, images, check=False)
        task = Task(inputs, outputs, delta, name="impure", check=False)
        result = check_task(task)
        assert error_codes(result) == {"RC105"}
        (diag,) = result.by_code("RC105")
        assert "(0:9)" in diag.witness


class TestRC106ImageOutsideCodomain:
    def test_fires_on_foreign_image_simplex(self):
        # the image is internally consistent (monotone, rigid, colored) but
        # lives entirely outside the declared output complex
        foreign = chrom((0, "x"), (1, "y"))
        task = edge_task(
            {EDGE: [foreign], V00: [chrom((0, "x"))], V11: [chrom((1, "y"))]},
            [E1],
        )
        result = check_task(task)
        assert error_codes(result) == {"RC106"}
        assert any("'x'" in d.witness for d in result.by_code("RC106"))


class TestRC107NotRigid:
    def test_fires_on_wrong_dimension_image(self):
        # Δ(edge) is 0-dimensional: rigidity fails, and—as entailed for any
        # chromatic task—the facet colors cannot match either (RC103)
        task = edge_task(
            {
                EDGE: [chrom((0, "a")), chrom((1, "b"))],
                V00: [chrom((0, "a"))],
                V11: [chrom((1, "b"))],
            },
            [E1],
        )
        assert run_domain_checks(task, select=["RC107"]).codes() == ("RC107",)
        full = error_codes(check_task(task))
        assert "RC107" in full and full <= {"RC107", "RC103"}

    def test_fires_on_impure_image(self):
        tri = chrom((0, 0), (1, 1), (2, 2))
        inputs = ChromaticComplex([tri], name="I")
        out_tri = chrom((0, "a"), (1, "b"), (2, "c"))
        stray = chrom((0, "s"), (1, "t"))
        outputs = ChromaticComplex([out_tri, stray], name="O")
        images = {}
        for s in tri.faces():
            images[s] = SimplicialComplex(
                [Simplex(out_tri.vertex_of_color(c) for c in s.colors())]
            )
        images[tri] = SimplicialComplex([out_tri, stray])
        delta = CarrierMap(inputs, outputs, images, check=False)
        task = Task(inputs, outputs, delta, name="impure-image", check=False)
        result = run_domain_checks(task, select=["RC107"])
        assert result.codes() == ("RC107",)
        (diag,) = result.by_code("RC107")
        assert "not pure" in diag.message


class TestRC301NotTotal:
    def test_fires_on_empty_image(self):
        task = edge_task({EDGE: [E1], V00: [chrom((0, "a"))]}, [E1])
        result = check_task(task)
        assert error_codes(result) == {"RC301"}
        (diag,) = result.by_code("RC301")
        assert "(1:1)" in diag.witness


class TestRC302OutputUnreachable:
    def test_warns_on_unreachable_facet(self):
        task = edge_task(
            {EDGE: [E1], V00: [chrom((0, "a"))], V11: [chrom((1, "b"))]},
            [E1, E2],
        )
        result = check_task(task)
        assert error_codes(result) == set()
        assert warning_codes(result) == {"RC302"}
        assert result.ok  # warnings do not fail a check
        (diag,) = result.by_code("RC302")
        assert "'c'" in diag.witness or "'d'" in diag.witness


class TestRC201NotCanonical:
    def test_fires_on_non_canonical_zoo_task(self):
        task = constant_task(3)
        result = run_domain_checks(task, stages=("canonical",))
        assert result.codes() == ("RC201",)
        assert any("preimages" in d.message or "share" in d.message
                   for d in result.by_code("RC201"))

    def test_clean_after_canonicalization(self):
        canon = canonicalize_if_needed(constant_task(3)).task
        assert run_domain_checks(canon, stages=("canonical",)).codes() == ()


class TestRC202ResidualLAP:
    def test_fires_on_canonical_hourglass(self):
        canon = canonicalize_if_needed(hourglass_task()).task
        result = run_domain_checks(canon, stages=("link",))
        assert result.codes() == ("RC202",)
        (diag,) = result.by_code("RC202")
        assert "2 components" in diag.message
        assert "w.r.t." in diag.witness and "components" in diag.witness

    def test_clean_after_splitting(self):
        from repro.splitting.pipeline import link_connected_form

        split = link_connected_form(hourglass_task()).task
        assert run_domain_checks(split, stages=("link",)).codes() == ()


class TestRC203LinkDisconnected:
    def test_fires_on_bowtie(self):
        pivot = chrom((0, "m")).sorted_vertices()[0]
        bowtie = SimplicialComplex(
            [
                Simplex([pivot, *chrom((1, "a"), (2, "b")).sorted_vertices()]),
                Simplex([pivot, *chrom((1, "c"), (2, "d")).sorted_vertices()]),
            ],
            name="bowtie",
        )
        result = check_complex(bowtie)
        assert result.codes() == ("RC203",)
        (diag,) = result.by_code("RC203")
        assert "2 connected components" in diag.message
        assert "(0:'m')" in diag.witness

    def test_clean_on_solid_triangle(self):
        tri = SimplicialComplex([chrom((0, "a"), (1, "b"), (2, "c"))])
        assert check_complex(tri).codes() == ()


class TestCarrierMapSubject:
    def test_carrier_checks_run_standalone(self):
        from repro.check import check_carrier_map

        inputs = ChromaticComplex([EDGE], name="I")
        outputs = SimplicialComplex([E1, E2], name="O")
        delta = CarrierMap(
            inputs,
            outputs,
            {EDGE: [E1], V00: [chrom((0, "c"))], V11: [chrom((1, "b"))]},
            check=False,
        )
        result = check_carrier_map(delta)
        assert "RC102" in result.codes()


class TestCleanTask:
    def test_identity_clean_at_every_stage(self):
        from repro.tasks.zoo import identity_task

        task = identity_task(3)
        assert check_task(task, deep=True).codes() == ()

    def test_unknown_subject_type_rejected(self):
        with pytest.raises(TypeError):
            run_domain_checks(42)  # type: ignore[arg-type]
