"""End-to-end tests for ``python -m repro check``."""

import json

import pytest

from repro.__main__ import main
from repro.io import save_task
from repro.tasks.task import Task
from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import chrom


@pytest.fixture()
def corrupt_task_file(tmp_path):
    """A task JSON whose Δ drops a vertex image (RC301)."""
    edge = chrom((0, 0), (1, 1))
    out = chrom((0, "a"), (1, "b"))
    inputs = ChromaticComplex([edge], name="I")
    outputs = SimplicialComplex([out], name="O")
    delta = CarrierMap(
        inputs,
        outputs,
        {edge: [out], chrom((0, 0)): [chrom((0, "a"))]},
        check=False,
    )
    task = Task(inputs, outputs, delta, name="broken", check=False)
    path = tmp_path / "broken.json"
    save_task(task, str(path))
    return str(path)


def test_whole_zoo_is_clean_by_default(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out and "0 warning(s)" in out


def test_single_zoo_target(capsys):
    assert main(["check", "identity"]) == 0
    assert "checked 1 subject(s)" in capsys.readouterr().out


def test_deep_mode_clean(capsys):
    assert main(["check", "identity", "--deep"]) == 0
    # the transformed task is checked as a second subject
    assert "checked 2 subject(s)" in capsys.readouterr().out


def test_unknown_target_is_usage_error():
    with pytest.raises(SystemExit):
        main(["check", "no-such-task"])


def test_corrupt_json_fails_with_rc301(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file]) == 1
    out = capsys.readouterr().out
    assert "RC301" in out and "delta-not-total" in out


def test_json_format(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-check/1"
    assert payload["ok"] is False
    assert [d["code"] for d in payload["diagnostics"]] == ["RC301"]
    assert payload["diagnostics"][0]["witness"]


def test_sarif_format(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "RC301" in rule_ids and "RC401" in rule_ids
    assert [r["ruleId"] for r in run["results"]] == ["RC301"]


def test_ignore_suppresses(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--ignore", "RC301"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_select_restricts(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--select", "RC1"]) == 0
    capsys.readouterr()


def test_output_file(tmp_path, capsys):
    dest = tmp_path / "report.json"
    assert main(["check", "identity", "--format", "json", "--output", str(dest)]) == 0
    payload = json.loads(dest.read_text())
    assert payload["ok"] is True
    assert "wrote" in capsys.readouterr().out


def test_self_check_exits_zero(capsys):
    assert main(["check", "--self"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_self_check_no_tools(capsys):
    assert main(["check", "--self", "--no-tools"]) == 0
    out = capsys.readouterr().out
    assert "mypy" not in out and "ruff" not in out


def test_self_rejects_targets():
    with pytest.raises(SystemExit):
        main(["check", "identity", "--self"])


def test_self_rejects_deep():
    with pytest.raises(SystemExit):
        main(["check", "--self", "--deep"])
