"""End-to-end tests for ``python -m repro check``."""

import json

import pytest

from repro.__main__ import main
from repro.io import save_task
from repro.tasks.task import Task
from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import chrom


@pytest.fixture()
def corrupt_task_file(tmp_path):
    """A task JSON whose Δ drops a vertex image (RC301)."""
    edge = chrom((0, 0), (1, 1))
    out = chrom((0, "a"), (1, "b"))
    inputs = ChromaticComplex([edge], name="I")
    outputs = SimplicialComplex([out], name="O")
    delta = CarrierMap(
        inputs,
        outputs,
        {edge: [out], chrom((0, 0)): [chrom((0, "a"))]},
        check=False,
    )
    task = Task(inputs, outputs, delta, name="broken", check=False)
    path = tmp_path / "broken.json"
    save_task(task, str(path))
    return str(path)


def test_whole_zoo_is_clean_by_default(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out and "0 warning(s)" in out


def test_single_zoo_target(capsys):
    assert main(["check", "identity"]) == 0
    assert "checked 1 subject(s)" in capsys.readouterr().out


def test_deep_mode_clean(capsys):
    assert main(["check", "identity", "--deep"]) == 0
    # the transformed task is checked as a second subject
    assert "checked 2 subject(s)" in capsys.readouterr().out


def test_unknown_target_is_usage_error():
    with pytest.raises(SystemExit):
        main(["check", "no-such-task"])


def test_corrupt_json_fails_with_rc301(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file]) == 1
    out = capsys.readouterr().out
    assert "RC301" in out and "delta-not-total" in out


def test_json_format(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-check/1"
    assert payload["ok"] is False
    assert [d["code"] for d in payload["diagnostics"]] == ["RC301"]
    assert payload["diagnostics"][0]["witness"]


def test_sarif_format(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "RC301" in rule_ids and "RC401" in rule_ids
    assert [r["ruleId"] for r in run["results"]] == ["RC301"]


def test_ignore_suppresses(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--ignore", "RC301"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_select_restricts(corrupt_task_file, capsys):
    assert main(["check", corrupt_task_file, "--select", "RC1"]) == 0
    capsys.readouterr()


def test_output_file(tmp_path, capsys):
    dest = tmp_path / "report.json"
    assert main(["check", "identity", "--format", "json", "--output", str(dest)]) == 0
    payload = json.loads(dest.read_text())
    assert payload["ok"] is True
    assert "wrote" in capsys.readouterr().out


def test_self_check_exits_zero(capsys):
    assert main(["check", "--self"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_self_check_no_tools(capsys):
    assert main(["check", "--self", "--no-tools"]) == 0
    out = capsys.readouterr().out
    assert "mypy" not in out and "ruff" not in out


def test_self_rejects_targets():
    with pytest.raises(SystemExit):
        main(["check", "identity", "--self"])


def test_self_rejects_deep():
    with pytest.raises(SystemExit):
        main(["check", "--self", "--deep"])


# -- effects mode -----------------------------------------------------------


def test_effects_clean_against_committed_baseline(capsys):
    assert main(["check", "--effects"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_effects_combines_with_self(capsys):
    assert main(["check", "--effects", "--self", "--no-tools"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_effects_empty_baseline_reports_rc50x(tmp_path, capsys):
    # with no declarations, the intentional clock/interning effects of
    # the live tree surface as findings — proving the gate has teeth
    empty = tmp_path / "empty.json"
    empty.write_text(
        json.dumps({"schema": "repro-effects-baseline/1", "declared": {}})
    )
    assert main(["check", "--effects", "--baseline", str(empty)]) == 1
    out = capsys.readouterr().out
    assert "RC503" in out and "RC505" in out


def test_effects_select_filters_codes(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text(
        json.dumps({"schema": "repro-effects-baseline/1", "declared": {}})
    )
    assert (
        main(
            [
                "check",
                "--effects",
                "--baseline",
                str(empty),
                "--select",
                "RC503",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "RC503" in out and "RC505" not in out


def test_effects_sarif_output(capsys):
    assert main(["check", "--effects", "--format", "sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    rule_ids = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
    assert {"RC501", "RC511"} <= rule_ids


def test_effects_missing_baseline_is_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["check", "--effects", "--baseline", str(tmp_path / "absent.json")])


def test_effects_rejects_targets():
    with pytest.raises(SystemExit):
        main(["check", "identity", "--effects"])


def test_baseline_flag_requires_effects(tmp_path):
    with pytest.raises(SystemExit):
        main(["check", "--baseline", str(tmp_path / "b.json")])


def test_write_baseline_requires_effects():
    with pytest.raises(SystemExit):
        main(["check", "--write-baseline"])


def test_write_baseline_roundtrip(tmp_path, capsys):
    dest = tmp_path / "baseline.json"
    assert main(["check", "--effects", "--write-baseline", "--baseline", str(dest)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(dest.read_text())
    assert payload["schema"] == "repro-effects-baseline/1"
    # the regenerated baseline judges the live tree clean
    assert main(["check", "--effects", "--baseline", str(dest)]) == 0
    capsys.readouterr()


def test_effects_run_records_diag_counters(tmp_path, capsys):
    store = tmp_path / "telemetry.jsonl"
    assert main(["check", "--effects", "--store", str(store)]) == 0
    capsys.readouterr()
    records = [
        json.loads(line)
        for line in store.read_text().splitlines()
        if line.strip()
    ]
    assert len(records) == 1
    assert records[0]["command"] == "check"
    counters = records[0]["counters"]
    assert counters.get("check.errors") == 0
    assert counters.get("check.warnings") == 0
