"""Level-3 effect analysis (`repro.check.effects`).

Synthetic package trees inject the exact faults the analysis exists to
catch — an ``os.environ`` read buried under a persisted decide entry
point, a warm-table mutation inside a pool worker — and the tests pin
both the code and the call-path witness.  A second group runs the
analysis over the live package against the committed baseline: the
suite fails if a new undeclared effect lands in ``src/repro``.
"""

import json
import os
import textwrap

import pytest

from repro.check.effects import (
    BASELINE_SCHEMA,
    Baseline,
    analyze_package,
    boundary_effect,
    effects_result,
    evaluate,
    load_baseline,
    render_baseline,
)


def _analyze_tree(root, files):
    for rel, source in files.items():
        full = os.path.join(str(root), rel.replace("/", os.sep))
        os.makedirs(os.path.dirname(full) or str(root), exist_ok=True)
        with open(full, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
    return analyze_package(str(root))


#: a minimal diskstore boundary module, shaped like the real one
_DISKSTORE = """
    def load(namespace, key):
        return None

    def store(namespace, key, value):
        return value
"""


def test_boundary_classification():
    assert boundary_effect("repro.obs.recorder") == "obs"
    assert boundary_effect("repro.topology.diskstore") == "diskstore"
    assert boundary_effect("repro.topology.cache") == "memo-cache"
    assert boundary_effect("repro.solvability.decision") is None


def test_env_read_under_persisted_entry_is_rc502_with_call_path(tmp_path):
    # the acceptance fault: an os.environ read two calls below a
    # diskstore-persisted decide entry point
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "solvability/decision.py": """
                import os

                from ..topology import diskstore

                def decide_solvability(task):
                    cached = diskstore.load("verdict", task)
                    if cached is None:
                        cached = _compute(task)
                        diskstore.store("verdict", task, cached)
                    return cached

                def _compute(task):
                    return _fast_mode() or task

                def _fast_mode():
                    return os.environ.get("REPRO_FAST") == "1"
            """,
        },
    )
    assert (
        analysis.entry_points["repro.solvability.decision.decide_solvability"]
        == "persisted"
    )
    diags = evaluate(analysis)
    rc502 = [d for d in diags if d.code == "RC502"]
    assert len(rc502) == 1
    witness = rc502[0].witness
    assert "decide_solvability" in witness
    assert "_compute" in witness
    assert "_fast_mode" in witness
    assert "os.environ.get" in witness


def test_env_read_is_hard_error_baseline_cannot_declare_it(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "mod.py": """
                import os

                from .topology import diskstore

                def entry(key):
                    diskstore.store("x", key, os.environ.get("HOME"))
            """,
        },
    )
    baseline = Baseline(declared={"repro.mod.entry": {"env-read": "declared anyway"}})
    assert any(d.code == "RC502" for d in evaluate(analysis, baseline))


def test_unseeded_rng_under_memoized_entry_is_rc501(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "mod.py": """
                import random

                def memoized_method(fn):
                    return fn

                class Table:
                    @memoized_method
                    def lookup(self, key):
                        return random.random() + key
            """,
        },
    )
    assert analysis.entry_points["repro.mod.Table.lookup"] == "memoized"
    diags = evaluate(analysis)
    assert any(d.code == "RC501" for d in diags)


def test_clock_under_cache_is_declarable_in_baseline(tmp_path):
    files = {
        "topology/diskstore.py": _DISKSTORE,
        "mod.py": """
            import time

            from .topology import diskstore

            def entry(key):
                t0 = time.perf_counter()
                diskstore.store("x", key, t0)
        """,
    }
    analysis = _analyze_tree(tmp_path, files)
    assert any(d.code == "RC503" for d in evaluate(analysis))
    declared = Baseline(declared={"repro.mod.entry": {"clock": "telemetry only"}})
    assert not any(d.code == "RC503" for d in evaluate(analysis, declared))


def test_seeded_rng_is_allowed_under_cache(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "mod.py": """
                import random

                from .topology import diskstore

                def entry(key):
                    rng = random.Random(key)
                    diskstore.store("x", key, rng.random())
            """,
        },
    )
    diags = evaluate(analysis)
    assert not any(d.code.startswith("RC50") for d in diags)


def test_warm_table_mutation_in_pool_worker_is_rc512(tmp_path):
    # the acceptance fault: a worker mutating a pre-fork warm table
    analysis = _analyze_tree(
        tmp_path,
        {
            "analysis/parallel.py": """
                _WARM = {}

                def run_parallel(pool, jobs):
                    return list(pool.imap_unordered(_chunk, jobs))

                def _chunk(job):
                    _WARM[job] = _compute(job)
                    return _WARM[job]

                def _compute(job):
                    return job * 2
            """,
        },
    )
    assert "repro.analysis.parallel._chunk" in analysis.worker_entries
    rc512 = [d for d in evaluate(analysis) if d.code == "RC512"]
    assert len(rc512) == 1
    assert "_WARM" in rc512[0].witness
    assert "_chunk" in rc512[0].witness


def test_lambda_dispatch_is_rc511(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "analysis/parallel.py": """
                def run_parallel(pool, jobs):
                    return pool.imap_unordered(lambda j: j + 1, jobs)
            """,
        },
    )
    rc511 = [d for d in evaluate(analysis) if d.code == "RC511"]
    assert len(rc511) == 1
    assert "lambda" in rc511[0].message


def test_undeclared_gauge_in_worker_is_rc513_and_policy_silences(tmp_path):
    files = {
        "analysis/parallel.py": """
            from ..obs import gauge_set

            def run_parallel(pool, jobs):
                return list(pool.map_async(_chunk, jobs).get())

            def _chunk(job):
                gauge_set("worker.depth", job)
                return job
        """,
        "obs/__init__.py": """
            def gauge_set(name, value):
                pass

            def set_gauge_policy(name, policy):
                pass
        """,
    }
    analysis = _analyze_tree(tmp_path, files)
    assert any(d.code == "RC513" for d in evaluate(analysis))

    files["analysis/parallel.py"] = """
        from ..obs import gauge_set, set_gauge_policy

        set_gauge_policy("worker.depth", "max")

        def run_parallel(pool, jobs):
            return list(pool.map_async(_chunk, jobs).get())

        def _chunk(job):
            gauge_set("worker.depth", job)
            return job
    """
    declared = _analyze_tree(tmp_path, files)
    assert not any(d.code == "RC513" for d in evaluate(declared))


def test_obs_boundary_does_not_propagate_clock(tmp_path):
    # obs internals read clocks; the boundary must stop that from
    # tainting every instrumented function
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "obs/recorder.py": """
                import time

                def span(name):
                    return time.perf_counter()
            """,
            "mod.py": """
                from .obs.recorder import span
                from .topology import diskstore

                def entry(key):
                    span("entry")
                    diskstore.store("x", key, 1)
            """,
        },
    )
    diags = evaluate(analysis)
    assert not any(d.code == "RC503" for d in diags)
    assert "obs" in analysis.effects_of("repro.mod.entry")


def test_stale_baseline_entry_is_rc509_warning(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "mod.py": """
                def pure(x):
                    return x + 1
            """,
        },
    )
    baseline = Baseline(declared={"repro.mod.pure": {"clock": "long gone"}})
    rc509 = [d for d in evaluate(analysis, baseline) if d.code == "RC509"]
    assert len(rc509) == 1
    assert rc509[0].severity == "warning"


def test_inline_suppression_silences_an_effect_finding(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "mod.py": """
                import time

                from .topology import diskstore

                def entry(key):
                    t0 = time.perf_counter()  # repro: ignore[RC503]
                    diskstore.store("x", key, t0)
            """,
        },
    )
    assert not any(d.code == "RC503" for d in evaluate(analysis))


def test_render_baseline_excludes_hard_errors_and_keeps_reasons(tmp_path):
    analysis = _analyze_tree(
        tmp_path,
        {
            "topology/diskstore.py": _DISKSTORE,
            "mod.py": """
                import os
                import time

                from .topology import diskstore

                def entry(key):
                    t0 = time.perf_counter()
                    diskstore.store("x", key, (t0, os.environ.get("HOME")))
            """,
        },
    )
    previous = Baseline(declared={"repro.mod.entry": {"clock": "kept reason"}})
    payload = render_baseline(analysis, previous)
    assert payload["schema"] == BASELINE_SCHEMA
    assert payload["declared"]["repro.mod.entry"]["clock"] == "kept reason"
    # env-read is a hard error: never declarable, never written out
    assert "env-read" not in payload["declared"].get("repro.mod.entry", {})


def test_load_baseline_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"schema": "nope/9", "declared": {}}))
    with pytest.raises(ValueError):
        load_baseline(str(bad))


def test_load_baseline_missing_explicit_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_baseline(str(tmp_path / "absent.json"))


# -- the live package against the committed baseline ------------------------


def test_live_package_is_effect_clean():
    result = effects_result()
    assert result.ok, "\n".join(d.render() for d in result.diagnostics)
    # the committed baseline must also carry no stale entries
    assert not any(d.code == "RC509" for d in result.diagnostics)


def test_live_entry_points_include_the_caching_layers():
    analysis = analyze_package()
    entries = analysis.entry_points
    assert entries.get("repro.analysis.census._decide_with_store") == "persisted"
    assert entries.get("repro.topology.subdivision.SubdivisionTower.level") == "persisted"
    assert (
        entries.get("repro.topology.complexes.SimplicialComplex.is_link_connected")
        == "memoized"
    )
    assert "repro.analysis.parallel._census_chunk" in analysis.worker_entries
    assert "repro.runtime.conformance._conform_entry" in analysis.worker_entries


def test_live_census_gauge_policy_is_declared():
    analysis = analyze_package()
    assert "census.max_splits" in analysis.declared_policies
