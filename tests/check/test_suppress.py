"""Inline suppression comments (`repro.check.suppress`)."""

import textwrap

from repro.check.astlint import lint_source
from repro.check.suppress import (
    apply_suppressions,
    find_suppressions,
    unknown_suppression_diagnostics,
)


def test_find_suppressions_parses_single_and_multiple_codes():
    source = textwrap.dedent(
        """
        x = 1  # repro: ignore[RC401]
        y = 2  # repro: ignore[RC402, RC405]
        z = 3
        """
    )
    supp = find_suppressions(source)
    assert supp[2] == {"RC401"}
    assert supp[3] == {"RC402", "RC405"}
    assert 4 not in supp


def test_suppressions_in_strings_and_docstrings_are_ignored():
    source = textwrap.dedent(
        '''
        def f():
            """Write `# repro: ignore[RC401]` on the flagged line."""
            s = "# repro: ignore[RC402]"
            return s
        '''
    )
    assert find_suppressions(source) == {}
    assert unknown_suppression_diagnostics(source, "mod.py") == []


def test_unknown_code_is_rc407():
    source = "x = 1  # repro: ignore[RC999]\n"
    diags = unknown_suppression_diagnostics(source, "mod.py")
    assert len(diags) == 1
    assert diags[0].code == "RC407"
    assert "RC999" in diags[0].message


def test_known_and_unknown_codes_mix():
    source = "x = 1  # repro: ignore[RC401, RC41]\n"
    assert find_suppressions(source) == {1: {"RC401"}}
    diags = unknown_suppression_diagnostics(source, "mod.py")
    assert [d.code for d in diags] == ["RC407"]
    assert "RC41" in diags[0].message


def test_empty_suppression_is_rc407():
    diags = unknown_suppression_diagnostics("x = 1  # repro: ignore[]\n", "mod.py")
    assert len(diags) == 1


def test_apply_suppressions_drops_only_matching_line_and_code():
    from repro.check.diagnostics import Diagnostic

    diags = [
        Diagnostic(code="RC401", message="m", subject="s", location="f.py:2:1"),
        Diagnostic(code="RC402", message="m", subject="s", location="f.py:2:1"),
        Diagnostic(code="RC401", message="m", subject="s", location="f.py:5:1"),
        Diagnostic(code="RC101", message="m", subject="s"),  # no location
    ]
    kept, dropped = apply_suppressions(diags, {2: {"RC401"}})
    assert dropped == 1
    assert [d.code for d in kept] == ["RC402", "RC401", "RC101"]


# -- astlint integration ----------------------------------------------------

_VIOLATION = "def f(s):\n    s._hash = 1{comment}\n"


def test_lint_source_honours_suppression():
    flagged = lint_source(_VIOLATION.format(comment=""), "analysis/census.py")
    assert any(d.code == "RC401" for d in flagged)

    silenced = lint_source(
        _VIOLATION.format(comment="  # repro: ignore[RC401]"), "analysis/census.py"
    )
    assert not any(d.code == "RC401" for d in silenced)


def test_lint_source_reports_unknown_suppression_codes():
    diags = lint_source(
        _VIOLATION.format(comment="  # repro: ignore[RC40]"), "analysis/census.py"
    )
    codes = [d.code for d in diags]
    # the typo'd suppression silences nothing and is itself reported
    assert "RC401" in codes
    assert "RC407" in codes
