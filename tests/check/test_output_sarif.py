"""SARIF 2.1.0 output shape (`repro.check.output.render_sarif`)."""

import json

from repro.check.diagnostics import CODES, Diagnostic
from repro.check.output import render_sarif
from repro.check.passes import CheckResult


def _sarif_run(diagnostics):
    result = CheckResult(diagnostics=diagnostics, subjects=["s"], passes_run=1)
    log = json.loads(render_sarif(result))
    assert log["version"] == "2.1.0"
    assert len(log["runs"]) == 1
    return log["runs"][0]


def _sample():
    return [
        Diagnostic(
            code="RC101",
            message="bad coloring",
            subject="task-a",
            witness="{P0, P0}",
        ),
        Diagnostic(
            code="RC401",
            message="interned write",
            subject="analysis/census.py",
            location="src/repro/analysis/census.py:10:5",
        ),
        Diagnostic(
            code="RC503",
            message="clock under cache",
            subject="decide",
            location="src/repro/solvability/decision.py:185:10",
        ),
        Diagnostic(
            code="RC509",
            message="stale entry",
            subject="decide",
            severity="warning",
        ),
    ]


def test_one_rules_entry_per_emitted_code():
    run = _sarif_run(_sample())
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert len(rule_ids) == len(set(rule_ids)), "duplicate rule ids"
    emitted = {r["ruleId"] for r in run["results"]}
    assert emitted <= set(rule_ids)


def test_rule_index_points_at_the_matching_rule():
    run = _sarif_run(_sample())
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        idx = result["ruleIndex"]
        assert rules[idx]["id"] == result["ruleId"]


def test_rules_carry_registry_metadata():
    run = _sarif_run(_sample())
    by_id = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    for code, info in CODES.items():
        assert by_id[code]["name"] == info.slug
        assert by_id[code]["fullDescription"]["text"] == info.summary


def test_severity_maps_to_sarif_level():
    run = _sarif_run(_sample())
    levels = {r["ruleId"]: r["level"] for r in run["results"]}
    assert levels["RC101"] == "error"
    assert levels["RC509"] == "warning"


def test_location_regions_are_one_based():
    run = _sarif_run(_sample())
    located = [r for r in run["results"] if "locations" in r]
    assert len(located) == 2
    for result in located:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region.get("startColumn", 1) >= 1


def test_zero_line_location_is_omitted_not_invalid():
    diag = Diagnostic(
        code="RC401",
        message="m",
        subject="s",
        location="src/repro/x.py:0:1",
    )
    run = _sarif_run([diag])
    assert "locations" not in run["results"][0]


def test_missing_location_is_omitted():
    diag = Diagnostic(code="RC101", message="m", subject="s")
    run = _sarif_run([diag])
    assert "locations" not in run["results"][0]


def test_malformed_location_is_omitted():
    diag = Diagnostic(code="RC401", message="m", subject="s", location="nonsense")
    run = _sarif_run([diag])
    assert "locations" not in run["results"][0]


def test_zero_column_keeps_line_but_drops_column():
    diag = Diagnostic(
        code="RC401",
        message="m",
        subject="s",
        location="src/repro/x.py:7:0",
    )
    run = _sarif_run([diag])
    region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 7}
