"""Call-graph construction (`repro.check.callgraph`).

Half of these tests build graphs over synthetic package trees (pinning
resolution rules in isolation); the other half spot-check the graph of
the live package, so resolution regressions surface on real code.
"""

import os
import textwrap

import pytest

from repro.check.callgraph import (
    build_call_graph,
    find_path,
    iter_reachable,
    module_name,
)


def _write_tree(root, files):
    for rel, source in files.items():
        full = os.path.join(root, rel.replace("/", os.sep))
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
    return str(root)


def test_module_name_mapping():
    assert module_name("analysis/census.py") == "repro.analysis.census"
    assert module_name("tasks/zoo/__init__.py") == "repro.tasks.zoo"
    assert module_name("io.py") == "repro.io"


def test_local_and_imported_calls_resolve(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "alpha.py": """
                from .beta import helper

                def top():
                    helper()
                    local()

                def local():
                    pass
            """,
            "beta.py": """
                def helper():
                    pass
            """,
        },
    )
    g = build_call_graph(root)
    callees = {s.callee for s in g.callees("repro.alpha.top")}
    assert "repro.beta.helper" in callees
    assert "repro.alpha.local" in callees


def test_method_resolution_through_self_and_bases(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "shapes.py": """
                class Base:
                    def area(self):
                        return 0

                class Square(Base):
                    def describe(self):
                        return self.area()
            """,
        },
    )
    g = build_call_graph(root)
    callees = {s.callee for s in g.callees("repro.shapes.Square.describe")}
    assert "repro.shapes.Base.area" in callees


def test_constructor_edges_reach_new_and_init(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "things.py": """
                class Thing:
                    def __new__(cls):
                        return super().__new__(cls)

                    def __init__(self):
                        self.x = 1

                def make():
                    return Thing()
            """,
        },
    )
    g = build_call_graph(root)
    callees = {s.callee for s in g.callees("repro.things.make")}
    assert "repro.things.Thing.__new__" in callees
    assert "repro.things.Thing.__init__" in callees


def test_dispatch_table_references_become_edges(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "rules.py": """
                def rule_a(x):
                    return x

                def rule_b(x):
                    return x

                RULES = (rule_a, rule_b)

                def apply_all(x):
                    for rule in RULES:
                        rule(x)
            """,
        },
    )
    g = build_call_graph(root)
    callees = {s.callee for s in g.callees("repro.rules.apply_all")}
    assert "repro.rules.rule_a" in callees
    assert "repro.rules.rule_b" in callees


def test_find_path_is_shortest(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "chain.py": """
                def a():
                    b()
                    c()

                def b():
                    c()

                def c():
                    pass
            """,
        },
    )
    g = build_call_graph(root)
    assert find_path(g, "repro.chain.a", "repro.chain.c") == [
        "repro.chain.a",
        "repro.chain.c",
    ]
    assert find_path(g, "repro.chain.c", "repro.chain.a") is None


def test_iter_reachable_covers_transitive_closure(tmp_path):
    root = _write_tree(
        tmp_path,
        {
            "chain.py": """
                def a():
                    b()

                def b():
                    c()

                def c():
                    pass

                def island():
                    pass
            """,
        },
    )
    g = build_call_graph(root)
    reach = set(iter_reachable(g, "repro.chain.a"))
    assert {"repro.chain.a", "repro.chain.b", "repro.chain.c"} <= reach
    assert "repro.chain.island" not in reach


# -- the live package -------------------------------------------------------


@pytest.fixture(scope="module")
def live_graph():
    return build_call_graph()


def test_live_graph_has_core_functions(live_graph):
    assert "repro.solvability.decision.decide_solvability" in live_graph.functions
    assert "repro.analysis.census.run_census" in live_graph.functions


def test_live_decide_reaches_obstruction_checks(live_graph):
    # the OBSTRUCTION_CHECKS dispatch table must produce real edges, or
    # the effect analysis would silently skip the whole obstruction layer
    reach = set(
        iter_reachable(live_graph, "repro.solvability.decision.decide_solvability")
    )
    assert "repro.solvability.obstructions.corollary_5_5" in reach


def test_live_census_store_path(live_graph):
    path = find_path(
        live_graph,
        "repro.analysis.census._decide_with_store",
        "repro.topology.diskstore.load",
    )
    assert path is not None and len(path) == 2
