"""The ``validate=`` pre-flight hook on the decision pipeline."""

import pytest

from repro.check import PreflightError, preflight_check
from repro.solvability.decision import Status, decide_solvability
from repro.tasks.task import Task
from repro.tasks.zoo import identity_task
from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import chrom


@pytest.fixture()
def non_total_task():
    edge = chrom((0, 0), (1, 1))
    out = chrom((0, "a"), (1, "b"))
    inputs = ChromaticComplex([edge], name="I")
    outputs = SimplicialComplex([out], name="O")
    delta = CarrierMap(
        inputs, outputs, {edge: [out], chrom((0, 0)): [chrom((0, "a"))]}, check=False
    )
    return Task(inputs, outputs, delta, name="non-total", check=False)


def test_preflight_passes_clean_task():
    preflight_check(identity_task(3))  # no exception


def test_preflight_raises_with_diagnostics(non_total_task):
    with pytest.raises(PreflightError) as exc:
        preflight_check(non_total_task)
    assert any(d.code == "RC301" for d in exc.value.diagnostics)
    assert "RC301" in str(exc.value)


def test_decide_solvability_validate_rejects(non_total_task):
    with pytest.raises(PreflightError):
        decide_solvability(non_total_task, validate=True)


def test_decide_solvability_validate_passes_clean():
    verdict = decide_solvability(identity_task(3), validate=True)
    assert verdict.status is Status.SOLVABLE


def test_validate_defaults_off(non_total_task):
    # without validate= the pipeline still runs (and is free to return
    # whatever it likes on garbage); the hook must be opt-in
    decide_solvability(non_total_task)


def test_cli_analyze_validate_flag(capsys):
    from repro.__main__ import main

    assert main(["analyze", "identity", "--validate"]) == 0
    capsys.readouterr()
