"""Cross-cutting coverage for less-traveled code paths."""

import json

import pytest

from repro import decide_solvability
from repro.solvability import Status
from repro.tasks.zoo import fan_task, path_task, random_multi_facet_task


class TestDecisionKnobs:
    def test_barycentric_chromatic_witness_rejected(self):
        with pytest.raises(ValueError, match="barycentric"):
            decide_solvability(
                path_task(3), engine="barycentric", chromatic_witness=True
            )

    def test_empty_image_path_through_decide(self):
        from repro.tasks.zoo import random_sparse_task

        verdict = decide_solvability(random_sparse_task(121), max_rounds=0)
        assert verdict.status is Status.UNSOLVABLE
        assert verdict.obstruction.kind in ("empty-image", "corollary-5.5")

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_facet_random_decidable(self, seed):
        verdict = decide_solvability(random_multi_facet_task(seed), max_rounds=1)
        assert verdict.status is not Status.UNKNOWN

    def test_twisted_fan_report(self):
        from repro.analysis import analyze_task

        report = analyze_task(fan_task(2, 2, twisted=True))
        assert report.solvable is False
        assert report.o_prime_components == 2


class TestSchedulerEdges:
    def test_run_with_schedule_records_trace(self):
        from repro.runtime.scheduler import run_with_schedule

        def factory(pid):
            def body():
                yield ("write", "R", pid)
                yield ("decide", pid)

            return body()

        trace = run_with_schedule(2, {0: factory, 1: factory}, [1, 0, 1, 0])
        assert trace.schedule[:2] == [1, 0]
        assert trace.decisions == {0: 0, 1: 1}

    def test_max_steps_propagates(self):
        from repro.runtime.scheduler import SchedulerError, run_with_schedule

        def spinner(pid):
            def body():
                while True:
                    yield ("scan", "S")

            return body()

        with pytest.raises(SchedulerError):
            run_with_schedule(1, {0: spinner}, [0] * 100, max_steps=10)


class TestIOEdges:
    def test_bad_json_payloads(self):
        from repro.io import SerializationError, task_from_json

        with pytest.raises(SerializationError):
            task_from_json({"$": "complex"})
        with pytest.raises(SerializationError):
            task_from_json({"no": "tag"})

    def test_load_nonstrict_with_check_false(self, tmp_path):
        from repro.io import load_task, save_task
        from repro.splitting import link_connected_form
        from repro.tasks.zoo import random_sparse_task

        split = link_connected_form(random_sparse_task(121)).task
        path = str(tmp_path / "nonstrict.json")
        save_task(split, path)
        with pytest.raises(Exception):
            load_task(path)  # strict validation fails
        loaded = load_task(path, check=False)
        assert loaded == split

    def test_dump_is_valid_json(self, tmp_path, hourglass):
        from repro.io import save_task

        path = tmp_path / "hg.json"
        save_task(hourglass, str(path))
        payload = json.loads(path.read_text())
        assert payload["$"] == "task"


class TestCLIExtra:
    def test_analyze_twisted_fan(self, capsys):
        from repro.__main__ import main

        assert main(["analyze", "twisted-fan"]) == 0
        assert "unsolvable" in capsys.readouterr().out

    def test_synthesize_respects_max_rounds(self, capsys):
        from repro.__main__ import main

        code = main(
            ["synthesize", "approx-agreement", "--max-rounds", "1",
             "--runs", "1", "--facets-only"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "r=1" in out
