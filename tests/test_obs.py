"""Unit tests for the repro.obs tracing/metrics layer.

Covers the recorder (spans, counters, gauges, worker snapshots), the
``repro-trace/1`` export schema, and the text summary — without touching
the instrumented decision pipeline (``tests/test_obs_integration.py``
does that end-to-end).
"""

import json

import pytest

from repro import obs
from repro.obs import (
    SCHEMA,
    Recorder,
    build_trace,
    capture_worker,
    counter_add,
    format_trace_summary,
    gauge_set,
    get_recorder,
    merge_cache_maps,
    merge_worker_snapshot,
    reset_recorder,
    set_tracing,
    span,
    tracing,
    tracing_enabled,
    validate_trace,
    write_trace,
)
from repro.topology import cache_clear


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test gets a fresh recorder and starts with tracing off."""
    set_tracing(False)
    reset_recorder()
    yield
    set_tracing(False)
    reset_recorder()


class TestDisabledByDefault:
    def test_tracing_starts_disabled(self):
        assert not tracing_enabled()

    def test_span_is_shared_noop_singleton(self):
        a, b = span("x"), span("y", attr=1)
        assert a is b  # one shared object: no allocation on the hot path
        with a as record:
            assert record is None
        assert get_recorder().roots == []

    def test_counters_and_gauges_are_noops(self):
        counter_add("n", 5.0)
        gauge_set("g", 1.0)
        rec = get_recorder()
        assert rec.counters == {} and rec.gauges == {}

    def test_annotate_tolerates_disabled_none(self):
        obs.annotate(None, anything="goes")  # must not raise


class TestRecording:
    def test_span_tree_nesting_and_attrs(self):
        with tracing():
            with span("outer", task="t") as outer:
                with span("inner", idx=0):
                    pass
                with span("inner", idx=1):
                    pass
                obs.annotate(outer, status="done")
        rec = get_recorder()
        assert [r.name for r in rec.roots] == ["outer"]
        outer_rec = rec.roots[0]
        assert outer_rec.attrs == {"task": "t", "status": "done"}
        assert [c.name for c in outer_rec.children] == ["inner", "inner"]
        assert [c.attrs["idx"] for c in outer_rec.children] == [0, 1]
        assert rec.span_names() == ["outer", "inner", "inner"]
        assert rec.find_span("inner").attrs["idx"] == 0
        assert rec.find_span("absent") is None

    def test_name_is_a_legal_attribute_key(self):
        # regression: span()'s positional parameter shadowed an attrs key
        # called "name" (TypeError: multiple values for argument 'name')
        with tracing():
            with span("conform.task", name="identity") as record:
                obs.annotate(record, name="identity-renamed")
        root = get_recorder().roots[0]
        assert root.name == "conform.task"
        assert root.attrs["name"] == "identity-renamed"

    def test_span_timings_populated(self):
        with tracing():
            with span("timed"):
                sum(range(1000))
        record = get_recorder().roots[0]
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0
        assert record.start_unix > 0.0

    def test_exception_annotates_error_and_pops_stack(self):
        with tracing():
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("bad input")
            # the stack unwound: a new span is a root, not a child of boom
            with span("after"):
                pass
        rec = get_recorder()
        assert rec.roots[0].attrs["error"] == "ValueError: bad input"
        assert [r.name for r in rec.roots] == ["boom", "after"]

    def test_counters_accumulate_and_gauges_overwrite(self):
        with tracing():
            counter_add("steps")
            counter_add("steps", 2.0)
            gauge_set("pop", 5.0)
            gauge_set("pop", 7.0)
        rec = get_recorder()
        assert rec.counters == {"steps": 3.0}
        assert rec.gauges == {"pop": 7.0}

    def test_tracing_context_restores_previous_state(self):
        assert not tracing_enabled()
        with tracing():
            assert tracing_enabled()
            with tracing(False):
                assert not tracing_enabled()
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_reset_recorder_returns_old_state(self):
        with tracing():
            counter_add("kept")
        old = reset_recorder()
        assert old.counters == {"kept": 1.0}
        assert get_recorder().counters == {}


class TestCacheDelta:
    def test_own_cache_is_delta_since_recorder_creation(self):
        from repro.topology.complexes import SimplicialComplex

        cache_clear()
        warm = SimplicialComplex([("a", "b", "c")])
        warm.f_vector()  # pre-recorder activity must not be attributed
        rec = reset_recorder()  # noqa: F841 - fresh baseline from here on
        k = SimplicialComplex([("x", "y", "z")])
        k.f_vector()
        k.f_vector()
        own = get_recorder().own_cache()
        stats = own["SimplicialComplex.f_vector"]
        assert stats == {"hits": 1, "misses": 1, "hit_rate": 0.5}
        cache_clear()

    def test_cache_clear_mid_run_never_goes_negative(self):
        from repro.topology.complexes import SimplicialComplex

        cache_clear()
        reset_recorder()
        k = SimplicialComplex([("x", "y", "z")])
        k.f_vector()
        cache_clear()  # raw counters reset below the recorder's baseline
        own = get_recorder().own_cache()
        for stats in own.values():
            assert stats["hits"] >= 0 and stats["misses"] >= 0

    def test_merge_cache_maps_sums_and_recomputes_rate(self):
        merged = merge_cache_maps(
            {"q": {"hits": 1, "misses": 3, "hit_rate": 0.25}},
            {"q": {"hits": 3, "misses": 1, "hit_rate": 0.75}},
            {"other": {"hits": 2, "misses": 0, "hit_rate": 1.0}},
        )
        assert merged["q"] == {"hits": 4, "misses": 4, "hit_rate": 0.5}
        assert merged["other"]["hits"] == 2


class TestGaugePolicies:
    def test_merge_gauge_maps_default_is_max(self):
        merged = obs.merge_gauge_maps([{"g": 2.0}, {"g": 5.0}, {"g": 3.0}])
        assert merged == {"g": 5.0}

    def test_each_policy_merges_as_named(self):
        maps = [{"g": 2.0}, {"g": 5.0}, {"g": 3.0}]
        for policy, expected in (
            ("max", 5.0),
            ("min", 2.0),
            ("sum", 10.0),
            ("last", 3.0),
        ):
            assert obs.merge_gauge_maps(maps, {"g": policy}) == {"g": expected}

    def test_unknown_policy_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown gauge policy"):
            obs.merge_gauge_maps([{"g": 1.0}], {"g": "median"})
        with pytest.raises(ValueError, match="unknown gauge policy"):
            get_recorder().set_gauge_policy("g", "median")

    def test_worker_gauges_merge_under_policy(self):
        set_tracing(True)
        gauge_set("population", 10.0)
        get_recorder().set_gauge_policy("population", "sum")
        for value in (7.0, 5.0):
            with capture_worker() as capture:
                gauge_set("population", value)
            merge_worker_snapshot(capture.snapshot)
        assert get_recorder().aggregate_gauges() == {"population": 22.0}

    def test_default_max_is_completion_order_free(self):
        set_tracing(True)
        snapshots = []
        for value in (3.0, 9.0, 1.0):
            with capture_worker() as capture:
                gauge_set("depth", value)
            snapshots.append(capture.snapshot)
        for snap in reversed(snapshots):  # merge in "wrong" order
            merge_worker_snapshot(snap)
        assert get_recorder().aggregate_gauges() == {"depth": 9.0}

    def test_worker_policy_rides_in_snapshot_but_parent_wins(self):
        set_tracing(True)
        with capture_worker() as capture:
            get_recorder().set_gauge_policy("g", "sum")
            gauge_set("g", 4.0)
        gauge_set("g", 1.0)
        merge_worker_snapshot(capture.snapshot)
        # no parent-side setting: the worker's "sum" choice is adopted
        assert get_recorder().aggregate_gauges() == {"g": 5.0}

        reset_recorder()
        set_tracing(True)
        get_recorder().set_gauge_policy("g", "min")
        gauge_set("g", 1.0)
        with capture_worker() as capture:
            get_recorder().set_gauge_policy("g", "sum")
            gauge_set("g", 4.0)
        merge_worker_snapshot(capture.snapshot)
        # explicit parent-side policy beats the snapshot's
        assert get_recorder().aggregate_gauges() == {"g": 1.0}

    def test_aggregate_gauges_lands_in_trace_aggregate(self):
        set_tracing(True)
        gauge_set("depth", 2.0)
        with capture_worker() as capture:
            gauge_set("depth", 6.0)
        merge_worker_snapshot(capture.snapshot)
        payload = build_trace()
        assert payload["aggregate"]["gauges"] == {"depth": 6.0}
        assert validate_trace(payload) == []

    def test_validator_rejects_drifted_gauge_aggregate(self):
        set_tracing(True)
        gauge_set("depth", 2.0)
        payload = json.loads(json.dumps(build_trace()))
        payload["aggregate"]["gauges"]["depth"] = 99.0
        assert any(
            "aggregate.gauges" in p for p in validate_trace(payload)
        )


class TestStartOffset:
    def test_offsets_are_monotonic_within_the_tree(self):
        set_tracing(True)
        with span("outer"):
            with span("first"):
                pass
            with span("second"):
                pass
        outer = get_recorder().roots[0]
        first, second = outer.children
        assert outer.start_offset >= 0.0
        assert first.start_offset >= outer.start_offset
        assert second.start_offset >= first.start_offset

    def test_offset_is_exported_and_required(self):
        set_tracing(True)
        with span("s"):
            pass
        payload = json.loads(json.dumps(build_trace()))
        assert "start_offset" in payload["spans"][0]
        del payload["spans"][0]["start_offset"]
        assert validate_trace(payload) != []


class TestWorkerAggregation:
    def test_capture_worker_snapshots_and_restores(self):
        with tracing():
            counter_add("parent.only")
        with capture_worker() as capture:
            with span("work"):
                counter_add("worker.steps", 4.0)
        # the worker block recorded into its own recorder, not the parent's
        assert "worker.steps" not in get_recorder().counters
        snap = capture.snapshot
        assert snap["counters"] == {"worker.steps": 4.0}
        assert [s["name"] for s in snap["spans"]] == ["work"]
        assert isinstance(snap["worker"], int)
        assert not tracing_enabled()  # previous flag restored

    def test_merge_worker_snapshot_feeds_aggregates(self):
        with tracing():
            counter_add("steps", 1.0)
        for _ in range(2):
            with capture_worker() as capture:
                counter_add("steps", 2.0)
                counter_add("worker.extra")
            merge_worker_snapshot(capture.snapshot)
        rec = get_recorder()
        assert len(rec.worker_snapshots) == 2
        assert rec.aggregate_counters() == {"steps": 5.0, "worker.extra": 2.0}
        # the parent's own counters are untouched by the merge
        assert rec.counters == {"steps": 1.0}


def _recorded_trace():
    """A small real trace: parent span/counters plus one worker snapshot."""
    reset_recorder()
    with tracing():
        with span("decide", task="unit"):
            with span("transform"):
                counter_add("splits", 3.0)
        gauge_set("population", 1.0)
    with capture_worker() as capture:
        with span("work"):
            counter_add("splits", 2.0)
    merge_worker_snapshot(capture.snapshot)
    return build_trace(meta={"command": "unit-test"})


class TestExport:
    def test_build_trace_shape_and_validity(self):
        payload = _recorded_trace()
        assert payload["schema"] == SCHEMA
        assert validate_trace(payload) == []
        assert payload["meta"] == {"command": "unit-test"}
        assert [s["name"] for s in payload["spans"]] == ["decide"]
        assert payload["spans"][0]["children"][0]["name"] == "transform"
        assert payload["aggregate"]["counters"]["splits"] == 5.0

    def test_write_trace_roundtrips(self, tmp_path):
        _recorded_trace()
        path = tmp_path / "trace.json"
        payload = write_trace(str(path), meta={"command": "unit-test"})
        on_disk = json.loads(path.read_text())
        assert validate_trace(on_disk) == []
        assert on_disk["counters"] == payload["counters"]

    def test_validate_trace_rejects_malformed_payloads(self):
        assert validate_trace(None) != []
        assert validate_trace({}) != []
        good = json.loads(json.dumps(_recorded_trace()))
        assert validate_trace(good) == []

        for mutate in (
            lambda p: p.update(schema="wrong/0"),
            lambda p: p.update(spans="not-a-list"),
            lambda p: p["spans"][0].update(name=""),
            lambda p: p["spans"][0].update(wall_seconds=-1.0),
            lambda p: p["spans"][0]["children"][0].update(cpu_seconds="fast"),
            lambda p: p.update(counters={"x": "NaN-ish"}),
            lambda p: p["workers"][0].update(worker="pid"),
            lambda p: p["workers"][0]["cache"].update(
                q={"hits": -1, "misses": 0, "hit_rate": 0.0}
            ),
            lambda p: p["aggregate"]["counters"].update(splits=99.0),
            lambda p: p["aggregate"].pop("cache"),
        ):
            payload = json.loads(json.dumps(good))
            mutate(payload)
            assert validate_trace(payload) != [], mutate

    def test_validate_trace_rejects_drifted_cache_aggregate(self):
        payload = json.loads(json.dumps(_recorded_trace()))
        payload["workers"][0]["cache"]["phantom"] = {
            "hits": 5,
            "misses": 5,
            "hit_rate": 0.5,
        }
        problems = validate_trace(payload)
        assert any("aggregate.cache" in p for p in problems)


class TestSummary:
    def test_summary_mentions_spans_counters_and_workers(self):
        payload = _recorded_trace()
        text = format_trace_summary(payload)
        assert SCHEMA in text
        assert "decide" in text and "transform" in text
        assert "splits" in text
        assert "population" in text
        assert "worker" in text.lower()

    def test_summary_max_depth_truncates(self):
        payload = _recorded_trace()
        shallow = format_trace_summary(payload, max_depth=0)
        assert "decide" in shallow
        assert "transform" not in shallow

    def test_top_replaces_tree_with_busiest_names(self):
        payload = _recorded_trace()
        text = format_trace_summary(payload, top=2)
        assert "top spans by name" in text
        assert "calls" in text
        # worker spans count toward the table
        assert "work" in text
        assert "more span names" in text  # decide/transform/work = 3 names

    def test_top_sort_orders(self):
        payload = _recorded_trace()
        for sort in ("wall", "cpu", "count"):
            text = format_trace_summary(payload, top=10, sort=sort)
            assert f"sorted by {sort}" in text
        with pytest.raises(ValueError, match="sort"):
            format_trace_summary(payload, top=3, sort="depth")

    def test_min_ms_hides_fast_subtrees(self):
        payload = _recorded_trace()
        # every recorded span is far under 10s: the whole tree hides
        text = format_trace_summary(payload, min_ms=10_000.0)
        assert "hidden" in text
        assert "transform" not in text

    def test_min_ms_filters_top_table_rows(self):
        payload = _recorded_trace()
        text = format_trace_summary(payload, top=10, min_ms=10_000.0)
        # every span is far under 10s, so no table row survives
        assert "decide" not in text
        assert "transform" not in text
