"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest.
The scripts print to stdout, which pytest captures.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/hourglass_impossibility.py",
    "examples/pinwheel_impossibility.py",
    "examples/synthesize_and_run.py",
    "examples/custom_task_checker.py",
    "examples/task_repair.py",
    "examples/protocol_debugging.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=[s.split("/")[-1] for s in EXAMPLES])
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_hourglass_example_dot_flag(tmp_path, capsys, monkeypatch):
    dot = str(tmp_path / "hg.dot")
    monkeypatch.setattr(sys, "argv", ["hourglass_impossibility.py", "--dot", dot])
    runpy.run_path("examples/hourglass_impossibility.py", run_name="__main__")
    assert (tmp_path / "hg.dot").exists()
