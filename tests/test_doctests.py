"""Run embedded doctests so docstring examples stay truthful."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.topology.simplex",
    "repro.topology.subdivision",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    # importlib avoids the attribute-shadowing quirk: repro.topology
    # re-exports a `simplex` *function*, which `import … as` would pick up
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1
