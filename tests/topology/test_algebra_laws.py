"""Algebraic laws: compositions, identities and functoriality.

Carrier maps and simplicial maps form the category-theoretic backbone of
the paper's framework; these tests pin the laws the rest of the library
silently relies on (identity, associativity, carrier/map compatibility,
subdivision carrier functoriality).
"""

import pytest

from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.maps import SimplicialMap, identity_map
from repro.topology.simplex import Simplex, chrom
from repro.topology.subdivision import (
    chromatic_subdivision,
    iterated_chromatic_subdivision,
)


def identity_carrier(k: SimplicialComplex) -> CarrierMap:
    return CarrierMap(k, k, {s: [s] for s in k.simplices()}, check=False)


@pytest.fixture
def chain():
    """Three complexes and two composable carrier maps A -> B -> C."""
    a = SimplicialComplex([("x", "y")])
    b = SimplicialComplex([("p", "q"), ("q", "r")])
    c = SimplicialComplex([("u", "v"), ("v", "w")])
    f = CarrierMap(
        a,
        b,
        {
            Simplex(["x"]): [("p",)],
            Simplex(["y"]): [("r",)],
            Simplex(["x", "y"]): b,
        },
    )
    g = CarrierMap(
        b,
        c,
        {
            Simplex(["p"]): [("u",)],
            Simplex(["q"]): [("v",)],
            Simplex(["r"]): [("w",)],
            Simplex(["p", "q"]): [("u", "v")],
            Simplex(["q", "r"]): [("v", "w")],
        },
    )
    return a, b, c, f, g


class TestCarrierMapLaws:
    def test_identity_left(self, chain):
        a, b, _, f, _ = chain
        assert identity_carrier(a).compose(f) == f

    def test_identity_right(self, chain):
        a, b, _, f, _ = chain
        assert f.compose(identity_carrier(b)) == f

    def test_composition_images(self, chain):
        a, b, c, f, g = chain
        comp = f.compose(g)
        assert comp(Simplex(["x"])).vertices == ("u",)
        assert set(comp(Simplex(["x", "y"])).vertices) == {"u", "v", "w"}

    def test_composition_monotone(self, chain):
        a, _, _, f, g = chain
        assert f.compose(g).is_monotonic()

    def test_associativity(self, chain):
        a, b, c, f, g = chain
        d = SimplicialComplex([("z",)])
        h = CarrierMap(
            c,
            d,
            {s: [("z",)] for s in c.simplices()},
            check=False,
        )
        assert f.compose(g).compose(h) == f.compose(g.compose(h))


class TestSimplicialMapLaws:
    def test_identity_neutral(self, disk):
        f = identity_map(disk)
        g = SimplicialMap(disk, disk, {"a": "b", "b": "a", "c": "c"})
        assert f.compose(g) == g
        assert g.compose(identity_map(disk)) == g

    def test_composition_associative(self, disk):
        f = SimplicialMap(disk, disk, {"a": "b", "b": "a", "c": "c"})
        g = SimplicialMap(disk, disk, {"a": "c", "b": "b", "c": "a"})
        h = SimplicialMap(disk, disk, {"a": "a", "b": "c", "c": "b"})
        assert f.compose(g).compose(h) == f.compose(g.compose(h))

    def test_image_functorial(self, disk):
        f = SimplicialMap(disk, disk, {"a": "a", "b": "a", "c": "c"})
        g = SimplicialMap(disk, disk, {"a": "c", "b": "c", "c": "c"})
        comp = f.compose(g)
        assert comp.image_complex().is_subcomplex_of(g.image_complex())


class TestSubdivisionFunctoriality:
    def test_iterated_carrier_equals_composition(self, triangle_complex):
        one = chromatic_subdivision(triangle_complex)
        two_step = chromatic_subdivision(one.complex)
        composed = one.carrier.compose(two_step.carrier)
        direct = iterated_chromatic_subdivision(triangle_complex, 2)
        assert direct.carrier == composed

    def test_carrier_respects_faces(self, triangle_complex):
        sub = iterated_chromatic_subdivision(triangle_complex, 2)
        for tau in triangle_complex.simplices():
            img = sub.carrier(tau)
            for face in tau.proper_faces():
                assert sub.carrier(face).is_subcomplex_of(img)

    def test_subdivision_of_subcomplex_glues(self):
        k = ChromaticComplex(
            [
                chrom((0, "a"), (1, "b"), (2, "c")),
                chrom((0, "a'"), (1, "b"), (2, "c")),
            ]
        )
        sub = chromatic_subdivision(k)
        shared_edge = chrom((1, "b"), (2, "c"))
        edge_sub = sub.carrier(shared_edge)
        # both facets' subdivisions contain the shared edge's subdivision
        for facet in k.facets:
            assert edge_sub.is_subcomplex_of(sub.carrier(facet))
