"""Unit tests for geometric realizations and PL maps."""

import numpy as np
import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.geometry import (
    Realization,
    RealizationPoint,
    barycenter,
    pl_image,
    sample_simplex_points,
)
from repro.topology.maps import SimplicialMap
from repro.topology.simplex import Simplex


class TestRealizationPoint:
    def test_valid(self):
        p = RealizationPoint(Simplex(["a", "b"]), (0.25, 0.75))
        assert p.as_weights() == {"a": 0.25, "b": 0.75}

    def test_coordinate_count_checked(self):
        with pytest.raises(ValueError):
            RealizationPoint(Simplex(["a", "b"]), (1.0,))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RealizationPoint(Simplex(["a", "b"]), (-0.5, 1.5))

    def test_sum_checked(self):
        with pytest.raises(ValueError):
            RealizationPoint(Simplex(["a", "b"]), (0.2, 0.2))

    def test_support_drops_zero_weights(self):
        p = RealizationPoint(Simplex(["a", "b"]), (0.0, 1.0))
        assert p.support() == Simplex(["b"])

    def test_barycenter(self, triangle):
        p = barycenter(triangle)
        assert all(abs(c - 1 / 3) < 1e-12 for c in p.coords)


class TestRealization:
    def test_explicit_positions(self, disk):
        r = Realization(disk, positions={"a": (0, 0), "b": (1, 0), "c": (0, 1)})
        mid = RealizationPoint(Simplex(["a", "b"]), (0.5, 0.5))
        assert np.allclose(r.locate(mid), [0.5, 0.0])

    def test_missing_positions_rejected(self, disk):
        with pytest.raises(ValueError):
            Realization(disk, positions={"a": (0, 0)})

    def test_default_layout_deterministic(self, disk):
        r1 = Realization(disk)
        r2 = Realization(disk)
        for v in disk.vertices:
            assert np.allclose(r1.positions[v], r2.positions[v])

    def test_locate_requires_member_simplex(self, disk):
        r = Realization(disk, positions={"a": (0, 0), "b": (1, 0), "c": (0, 1)})
        with pytest.raises(ValueError):
            r.locate(RealizationPoint(Simplex(["a", "z"]), (0.5, 0.5)))

    def test_vertex_location(self, disk):
        r = Realization(disk, positions={"a": (0, 0), "b": (1, 0), "c": (0, 1)})
        p = RealizationPoint(Simplex(["b"]), (1.0,))
        assert np.allclose(r.locate(p), [1, 0])


class TestPLImage:
    def test_identity(self, disk):
        f = SimplicialMap(disk, disk, {v: v for v in disk.vertices})
        p = barycenter(Simplex(["a", "b", "c"]))
        q = pl_image(f, p)
        assert q.simplex == p.simplex
        assert np.allclose(q.coords, p.coords)

    def test_collapse_accumulates_weights(self):
        dom = SimplicialComplex([("a", "b")])
        cod = SimplicialComplex([("u",)])
        f = SimplicialMap(dom, cod, {"a": "u", "b": "u"})
        p = RealizationPoint(Simplex(["a", "b"]), (0.3, 0.7))
        q = pl_image(f, p)
        assert q.simplex == Simplex(["u"])
        assert np.allclose(q.coords, [1.0])

    def test_continuity_sample(self, disk):
        # PL image of nearby points stays nearby under a simplicial map
        cod = SimplicialComplex([("u", "v", "w")])
        f = SimplicialMap(disk, cod, {"a": "u", "b": "v", "c": "w"})
        r = Realization(cod, positions={"u": (0, 0), "v": (1, 0), "w": (0, 1)})
        pts = sample_simplex_points(Simplex(["a", "b", "c"]), resolution=4)
        locs = [r.locate(pl_image(f, p)) for p in pts]
        assert len(locs) == 15


class TestSampling:
    def test_count(self, triangle):
        pts = sample_simplex_points(triangle, resolution=3)
        assert len(pts) == 10  # C(3+2, 2)

    def test_includes_vertices(self, triangle):
        pts = sample_simplex_points(triangle, resolution=2)
        vertex_supports = [p.support() for p in pts if len(p.support()) == 1]
        assert len(vertex_supports) == 3

    def test_edge_resolution(self):
        pts = sample_simplex_points(Simplex(["a", "b"]), resolution=4)
        assert len(pts) == 5
