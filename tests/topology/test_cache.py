"""The caching layer: interning, memoized queries, and the control surface.

The invariant under test everywhere: caching is an implementation detail —
every query answers identically with the layer on, off, or cleared
mid-stream.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.tasks.zoo import hourglass_task, majority_consensus_task
from repro.topology import (
    SimplicialComplex,
    cache_clear,
    cache_info,
    caching_disabled,
    caching_enabled,
    chromatic_subdivision,
    set_caching,
)
from repro.topology.simplex import Simplex, Vertex, chrom


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from a cleared cache and restores the global flag."""
    cache_clear()
    was = caching_enabled()
    yield
    set_caching(was)
    cache_clear()


def _example_complexes():
    """A small but structurally varied pool of complexes."""
    hourglass = hourglass_task().output_complex
    majority = majority_consensus_task().input_complex
    sub = chromatic_subdivision(SimplicialComplex([chrom((0, 0), (1, 0), (2, 0))]))
    path = SimplicialComplex([("a", "b"), ("b", "c"), ("d",)], name="path")
    return [hourglass, majority, sub.complex, path]


# -- interning ----------------------------------------------------------------


def test_interning_returns_identical_objects():
    a = Simplex([Vertex(0, "x"), Vertex(1, "y")])
    b = Simplex([Vertex(1, "y"), Vertex(0, "x")])  # order-insensitive
    assert a is b


def test_interning_disabled_gives_fresh_objects():
    with caching_disabled():
        a = Simplex([Vertex(0, "x")])
        b = Simplex([Vertex(0, "x")])
        assert a == b and a is not b


def test_pickle_roundtrip_reinterns():
    s = chrom((0, "x"), (1, "y"), (2, "z"))
    clone = pickle.loads(pickle.dumps(s))
    assert clone is s  # same process => same intern table

    k = SimplicialComplex([s], name="K")
    k2 = pickle.loads(pickle.dumps(k))
    assert k2 == k and k2.name == "K"
    assert k2.facets == k.facets


def test_vertex_copy_identity():
    v = Vertex(2, ("composite", 7))
    assert copy.copy(v) is v
    assert copy.deepcopy(v) is v
    assert pickle.loads(pickle.dumps(v)) == v


# -- memoized queries answer exactly like the uncached layer -------------------


def _query_snapshot(k: SimplicialComplex):
    return {
        "simplices": k.simplices(),
        "edges": k.simplices(dim=1),
        "f_vector": k.f_vector(),
        "is_pure": k.is_pure(),
        "is_chromatic": k.is_chromatic(),
        "colors": k.colors(),
        "skeleton1_facets": k.skeleton(1).facets,
        "stars": {v: k.star(v).facets for v in k.vertices},
        "links": {v: k.link(v).facets for v in k.vertices},
        "graph_edges": sorted(map(sorted, map(list, k.graph().edges()))),
        "is_connected": k.is_connected(),
        "components": k.connected_components(),
        "is_link_connected": k.is_link_connected(),
    }


@pytest.mark.parametrize("idx", range(4))
def test_memoized_queries_match_uncached(idx):
    k = _example_complexes()[idx]
    cached_first = _query_snapshot(k)
    cached_second = _query_snapshot(k)  # answered from the cache
    with caching_disabled():
        uncached = _query_snapshot(k)
    assert cached_first == cached_second == uncached


def test_queries_survive_cache_clear():
    k = hourglass_task().output_complex
    before = _query_snapshot(k)
    cache_clear()
    assert _query_snapshot(k) == before


# -- the control surface -------------------------------------------------------


FV = "SimplicialComplex.f_vector"


def test_cache_info_reports_hits_and_misses():
    cache_clear()
    k = _example_complexes()[3]
    k.f_vector()
    info = cache_info()
    assert info[FV]["misses"] == 1
    assert info[FV]["hits"] == 0
    k.f_vector()
    k.f_vector()
    info = cache_info()
    assert info[FV]["hits"] == 2
    assert 0.0 < info[FV]["hit_rate"] < 1.0


def test_cache_clear_resets_stats_and_invalidates():
    k = _example_complexes()[3]
    k.is_pure()
    k.is_pure()
    assert cache_info()["SimplicialComplex.is_pure"]["hits"] >= 1
    cache_clear()
    assert cache_info() == {}  # unexercised queries are omitted
    k.is_pure()  # epoch bumped: recomputed, not served stale
    assert cache_info()["SimplicialComplex.is_pure"]["misses"] == 1


def test_per_instance_caches_are_isolated():
    a = SimplicialComplex([("a", "b")])
    b = SimplicialComplex([("a", "b")])
    assert a == b
    a.f_vector()
    info = cache_info()
    b.f_vector()  # equal but distinct instance: its own miss
    assert cache_info()[FV]["misses"] == info[FV]["misses"] + 1


def test_caching_disabled_is_reentrant_and_restores():
    assert caching_enabled()
    with caching_disabled():
        assert not caching_enabled()
        with caching_disabled():
            assert not caching_enabled()
        assert not caching_enabled()
    assert caching_enabled()
