"""Unit tests for chromatic complexes and colorless projections."""

import pytest

from repro.topology.chromatic import (
    ChromaticComplex,
    NotChromaticError,
    colorless_complex,
    ids,
    strip_colors,
)
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, Vertex, chrom


class TestValidation:
    def test_valid(self, triangle):
        k = ChromaticComplex([triangle])
        assert k.is_chromatic()

    def test_colorless_vertex_rejected(self):
        with pytest.raises(NotChromaticError):
            ChromaticComplex([Simplex(["a", "b"])])

    def test_repeated_color_rejected(self):
        bad = Simplex([Vertex(0, "a"), Vertex(0, "b")])
        with pytest.raises(NotChromaticError):
            ChromaticComplex([bad])

    def test_repeated_color_in_higher_facet_rejected(self):
        bad = Simplex([Vertex(0, "a"), Vertex(0, "b"), Vertex(1, "c")])
        with pytest.raises(NotChromaticError):
            ChromaticComplex([bad])


class TestAccessors:
    def test_vertices_of_color(self, triangle_complex):
        vs = triangle_complex.vertices_of_color(1)
        assert vs == (Vertex(1, "b"),)

    def test_vertices_of_missing_color(self, triangle_complex):
        assert triangle_complex.vertices_of_color(9) == ()

    def test_restrict_colors(self, triangle_complex):
        sub = triangle_complex.restrict_colors({0, 1})
        assert sub.colors() == frozenset({0, 1})
        assert sub.dim == 1

    def test_facets_with_colors(self):
        k = ChromaticComplex([chrom((0, "a"), (1, "b"), (2, "c")),
                              chrom((0, "a"), (1, "q"), (2, "r"))])
        pairs = k.facets_with_colors({0, 1})
        assert all(f.colors() == frozenset({0, 1}) for f in pairs)
        assert len(pairs) == 2  # {a,b} and {a,q}

    def test_is_properly_colored_by(self, triangle_complex):
        assert triangle_complex.is_properly_colored_by(3)
        assert not triangle_complex.is_properly_colored_by(2)


class TestColorless:
    def test_ids(self, triangle):
        assert ids(triangle) == frozenset({0, 1, 2})

    def test_strip_colors(self, triangle):
        assert strip_colors(triangle) == frozenset({"a", "b", "c"})

    def test_strip_colors_collapses(self):
        s = chrom((0, "v"), (1, "v"))
        assert strip_colors(s) == frozenset({"v"})

    def test_colorless_complex(self, triangle_complex):
        c = colorless_complex(triangle_complex)
        assert Simplex(["a", "b", "c"]) in c
        assert c.dim == 2

    def test_colorless_complex_collapse(self):
        k = ChromaticComplex([chrom((0, 0), (1, 0), (2, 1))])
        c = colorless_complex(k)
        assert c.dim == 1  # values {0, 1}

    def test_strip_raw_vertices_passthrough(self):
        assert strip_colors(Simplex(["x"])) == frozenset({"x"})
