"""Surface topology workouts for the homology machinery.

The Möbius band is the smallest space where orientation matters: its
boundary circle wraps *twice* around the core circle, so the relation
``[boundary] = 2·[core]`` in H1 exercises the integer (not mod-2) side of
the chain machinery — exactly the arithmetic the torsion obstruction of
the solvability checker relies on.
"""

import numpy as np
import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.homology import (
    ChainBasis,
    betti_numbers,
    edge_chain,
    homology_torsion,
    is_null_homologous,
    solve_integer,
    boundary_matrix,
)


@pytest.fixture
def mobius():
    """The standard 5-vertex triangulation of the Möbius band.

    Facets ``{i, i+1, i+2}`` mod 5 — each consecutive triple of the
    pentagon's vertices.
    """
    return SimplicialComplex([(i, (i + 1) % 5, (i + 2) % 5) for i in range(5)])


class TestMobiusBand:
    def test_counts(self, mobius):
        assert mobius.f_vector() == (5, 10, 5)
        assert mobius.euler_characteristic() == 0

    def test_homotopy_type_of_circle(self, mobius):
        assert betti_numbers(mobius) == (1, 1, 0)
        assert homology_torsion(mobius, 1) == ()

    def test_core_circle_does_not_bound(self, mobius):
        basis = ChainBasis.of(mobius)
        core = edge_chain(basis, [0, 1, 2, 3, 4, 0])
        assert not is_null_homologous(mobius, core, over="Z")

    def test_boundary_is_twice_core(self, mobius):
        """[∂M] = ±2[core] in H1: boundary - 2·core (up to sign) bounds."""
        basis = ChainBasis.of(mobius)
        # the boundary circle: edges {i, i+2} mod 5 (the "long" chords)
        boundary_cycle = edge_chain(basis, [0, 2, 4, 1, 3, 0])
        core = edge_chain(basis, [0, 1, 2, 3, 4, 0])
        d2 = boundary_matrix(basis, 2)
        hits = [
            sign
            for sign in (+2, -2)
            if solve_integer(d2, boundary_cycle + sign * core) is not None
        ]
        assert hits, "boundary must be homologous to ±2 · core"

    def test_boundary_does_not_bound_itself(self, mobius):
        basis = ChainBasis.of(mobius)
        boundary_cycle = edge_chain(basis, [0, 2, 4, 1, 3, 0])
        assert not is_null_homologous(mobius, boundary_cycle, over="Z")

    def test_boundary_bounds_mod_2(self, mobius):
        # over GF(2) the factor 2 vanishes: the boundary circle bounds
        basis = ChainBasis.of(mobius)
        boundary_cycle = edge_chain(basis, [0, 2, 4, 1, 3, 0])
        assert is_null_homologous(mobius, boundary_cycle, over="Z2")

    def test_not_link_connected_on_boundary(self, mobius):
        # interior vertices of a surface-with-boundary have path links
        comps = mobius.link_components(0)
        assert len(comps) == 1  # the link is a path: connected
        assert mobius.is_link_connected()


class TestCylinder:
    @pytest.fixture
    def cylinder(self):
        """Annulus from the torus construction with one direction cut."""
        facets = []
        for i in range(3):
            for j in range(2):
                a, b = (i, j), ((i + 1) % 3, j)
                c, d = (i, j + 1), ((i + 1) % 3, j + 1)
                facets.append((a, b, c))
                facets.append((b, c, d))
        return SimplicialComplex(facets)

    def test_homotopy_circle(self, cylinder):
        assert betti_numbers(cylinder) == (1, 1, 0)

    def test_two_boundary_circles_homologous(self, cylinder):
        basis = ChainBasis.of(cylinder)
        bottom = edge_chain(basis, [(0, 0), (1, 0), (2, 0), (0, 0)])
        top = edge_chain(basis, [(0, 2), (1, 2), (2, 2), (0, 2)])
        d2 = boundary_matrix(basis, 2)
        assert solve_integer(d2, bottom - top) is not None
        assert not is_null_homologous(cylinder, bottom, over="Z")
