"""Unit tests for link helpers."""

from repro.topology.complexes import SimplicialComplex
from repro.topology.links import (
    articulation_vertices,
    is_link_connected,
    link,
    link_components,
    longest_link_size,
)


class TestLinkFunctions:
    def test_link_matches_method(self, two_triangles):
        assert link(two_triangles, "b") == two_triangles.link("b")

    def test_link_components(self, bowtie):
        comps = link_components(bowtie, "w")
        assert len(comps) == 2

    def test_is_link_connected(self, disk, bowtie):
        assert is_link_connected(disk)
        assert not is_link_connected(bowtie)


class TestArticulationVertices:
    def test_bowtie_waist(self, bowtie):
        assert articulation_vertices(bowtie) == ("w",)

    def test_disk_has_none(self, disk):
        assert articulation_vertices(disk) == ()

    def test_path_interior(self):
        path = SimplicialComplex([("a", "b"), ("b", "c")])
        assert articulation_vertices(path) == ("b",)

    def test_two_waists(self):
        k = SimplicialComplex([("a", "b", "w"), ("c", "d", "w"),
                               ("c", "d", "u"), ("e", "f", "u")])
        assert set(articulation_vertices(k)) == {"u", "w"}


class TestLongestLink:
    def test_disk(self, disk):
        assert longest_link_size(disk) == 2

    def test_bowtie(self, bowtie):
        assert longest_link_size(bowtie) == 4

    def test_empty(self):
        assert longest_link_size(SimplicialComplex.empty()) == 0

    def test_single_vertex(self):
        assert longest_link_size(SimplicialComplex([("a",)])) == 0
