"""Unit tests for pseudomanifold diagnostics."""

import pytest

from repro.splitting import link_connected_form
from repro.topology.complexes import SimplicialComplex
from repro.topology.pseudomanifolds import (
    boundary_complex,
    decomposition_summary,
    edge_triangle_degrees,
    is_closed_pseudomanifold,
    is_manifold_vertex,
    is_pseudomanifold,
    non_manifold_vertices,
)
from repro.topology.simplex import Simplex, Vertex


class TestEdgeDegrees:
    def test_disk(self, disk):
        degrees = edge_triangle_degrees(disk)
        assert all(d == 1 for d in degrees.values())

    def test_two_triangles_shared_edge(self, two_triangles):
        degrees = edge_triangle_degrees(two_triangles)
        shared = Simplex(["b", "c"])
        assert degrees[shared] == 2
        assert sum(1 for d in degrees.values() if d == 1) == 4


class TestPseudomanifold:
    def test_disk_is_pseudomanifold_with_boundary(self, disk):
        assert is_pseudomanifold(disk)
        assert not is_closed_pseudomanifold(disk)
        assert len(boundary_complex(disk).simplices(dim=1)) == 3

    def test_sphere_is_closed(self):
        import itertools

        sphere = SimplicialComplex(itertools.combinations("abcd", 3))
        assert is_closed_pseudomanifold(sphere)
        assert not boundary_complex(sphere)

    def test_book_of_three_pages_is_not(self):
        # three triangles sharing one edge: the CAD-style defect
        book = SimplicialComplex(
            [("a", "b", "p"), ("a", "b", "q"), ("a", "b", "r")]
        )
        assert not is_pseudomanifold(book)
        summary = decomposition_summary(book)
        assert summary["overloaded_edges"] == 1

    def test_one_dimensional_rejected(self, circle):
        assert not is_pseudomanifold(circle)


class TestManifoldVertices:
    def test_disk_vertices_manifold(self, disk):
        assert non_manifold_vertices(disk) == ()

    def test_bowtie_waist_detected(self, bowtie):
        assert non_manifold_vertices(bowtie) == ("w",)
        assert not is_manifold_vertex(bowtie, "w")
        assert is_manifold_vertex(bowtie, "a")

    def test_hourglass_waist(self, hourglass):
        o = hourglass.output_complex
        assert is_pseudomanifold(o)
        assert non_manifold_vertices(o) == (Vertex(0, 1),)

    def test_split_hourglass_is_two_disks(self, hourglass):
        res = link_connected_form(hourglass)
        o_prime = res.task.output_complex
        summary = decomposition_summary(o_prime)
        assert summary["pseudomanifold"]
        assert summary["non_manifold_vertices"] == ()
        assert summary["components"] == 2

    def test_pinwheel_defects_resolved_by_splitting(self, pinwheel):
        before = non_manifold_vertices(pinwheel.output_complex)
        assert len(before) == 9  # every vertex
        res = link_connected_form(pinwheel)
        after = non_manifold_vertices(res.task.output_complex)
        assert after == ()


class TestSummary:
    def test_keys(self, disk):
        summary = decomposition_summary(disk)
        assert summary["pure_2d"] and summary["pseudomanifold"]
        assert summary["boundary_edges"] == 3
        assert summary["components"] == 1
