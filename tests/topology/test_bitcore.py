"""Parity suite for the bit-packed topology kernels.

:mod:`repro.topology.bitcore` re-answers the pipeline's hot queries —
connectivity, components, link components, GF(2) linear algebra, cycle
bases, shortest paths — with packed-integer arithmetic.  The legacy
object/networkx/numpy kernels are retained precisely so this suite can
assert answer-for-answer agreement on a seeded random population, plus
end-to-end verdict parity of the full decision procedure with the layer
forced on and off.
"""

from __future__ import annotations

import random

import networkx as nx
import numpy as np
import pytest

from repro import decide_solvability
from repro.topology import cache_clear
from repro.topology.bitcore import (
    BitComplex,
    bitcore_disabled,
    bitcore_enabled,
    bitcore_forced,
    gf2_rank,
    gf2_solve,
    pack_rows,
    set_bitcore,
)
from repro.topology.complexes import SimplicialComplex
from repro.topology.homology import (
    ChainBasis,
    _bfs_cycle_space_generators,
    _legacy_cycle_space_generators,
    _legacy_rank_mod2,
    _legacy_solve_mod2,
    boundary_matrix,
    rank_mod2,
    solve_mod2,
)
from repro.tasks.zoo.random_tasks import (
    random_single_input_task,
    random_sparse_task,
)

SEEDS = range(30)  # >= 25 seeds per property, per the perf-layer contract


def random_complex(seed: int, n_vertices: int = 8, n_facets: int = 7) -> SimplicialComplex:
    """A random mixed-dimension complex (facet sizes 1-4, closed down)."""
    rng = random.Random(seed)
    universe = [f"v{i}" for i in range(n_vertices)]
    facets = []
    for _ in range(n_facets):
        size = rng.choice((1, 2, 2, 3, 3, 4))
        facets.append(tuple(rng.sample(universe, size)))
    return SimplicialComplex(facets)


# -- structural queries: bit kernels vs legacy object kernels -----------------


@pytest.mark.parametrize("seed", SEEDS)
def test_connectivity_parity(seed):
    k = random_complex(seed)
    bits = k._bits()
    assert bits.is_connected() == k._legacy_is_connected()
    assert bits.connected_components() == k._legacy_connected_components()


@pytest.mark.parametrize("seed", SEEDS)
def test_link_parity(seed):
    k = random_complex(seed)
    bits = k._bits()
    assert bits.is_link_connected() == k._legacy_is_link_connected()
    for v in k.vertices:
        assert bits.link_components(v) == k._legacy_link_components(v)


@pytest.mark.parametrize("seed", SEEDS)
def test_shortest_path_parity(seed):
    k = random_complex(seed)
    bits = k._bits()
    g = k.graph()
    edges = {frozenset(e.vertices) for e in k.simplices(1)}
    rng = random.Random(seed ^ 0xBEEF)
    verts = list(k.vertices)
    for _ in range(10):
        a, b = rng.choice(verts), rng.choice(verts)
        path = bits.shortest_path(a, b)
        try:
            want = nx.shortest_path_length(g, a, b)
        except nx.NetworkXNoPath:
            assert path is None
            continue
        # a genuine edge path of minimal length with the right endpoints
        assert path is not None
        assert (path[0], path[-1]) == (a, b)
        assert len(path) - 1 == want
        for u, w in zip(path, path[1:]):
            assert frozenset((u, w)) in edges


def test_shortest_path_degenerate_cases():
    k = SimplicialComplex([("a", "b"), ("c",)])
    bits = k._bits()
    assert bits.shortest_path("a", "a") == ["a"]
    assert bits.shortest_path("a", "c") is None  # disconnected
    assert bits.shortest_path("a", "zz") is None  # absent endpoint
    assert bits.shortest_path("zz", "a") is None


def test_empty_complex_is_connected():
    bits = BitComplex.from_complex(SimplicialComplex.empty())
    assert bits.is_connected()
    assert bits.connected_components() == ()


# -- GF(2) linear algebra ------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_gf2_rank_parity(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, size=(rng.integers(1, 9), rng.integers(1, 9)))
    assert gf2_rank(pack_rows(a)) == _legacy_rank_mod2(a)


@pytest.mark.parametrize("seed", SEEDS)
def test_gf2_solve_parity(seed):
    rng = np.random.default_rng(seed ^ 0xF00D)
    rows, cols = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    a = rng.integers(0, 2, size=(rows, cols))
    b = rng.integers(0, 2, size=rows)
    packed = gf2_solve(pack_rows(a), [int(v) for v in b], cols)
    legacy = _legacy_solve_mod2(a, b)
    # solvability must agree; the witnesses may differ, so each engine's
    # witness is checked against the system instead of against the other's
    assert (packed is None) == (legacy is None)
    if packed is not None:
        x = np.array([(packed >> c) & 1 for c in range(cols)])
        assert np.array_equal((a @ x) % 2, b % 2)
        assert np.array_equal((a @ legacy) % 2, b % 2)


def test_dispatch_wrappers_follow_the_switch():
    a = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
    b = np.array([0, 0, 0])
    with bitcore_forced():
        assert bitcore_enabled()
        rank_on = rank_mod2(a)
        sol_on = solve_mod2(a, b)
    with bitcore_disabled():
        assert not bitcore_enabled()
        assert rank_mod2(a) == rank_on
        assert (solve_mod2(a, b) is None) == (sol_on is None)


def test_set_bitcore_returns_previous_state():
    previous = set_bitcore(False)
    try:
        assert not bitcore_enabled()
    finally:
        set_bitcore(previous)
    assert bitcore_enabled() == previous


# -- cycle space generators ----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_cycle_generators_span_parity(seed):
    k = random_complex(seed)
    fast = _bfs_cycle_space_generators(k)
    legacy = _legacy_cycle_space_generators(k)
    # one fundamental cycle per non-forest edge: E - V + C, either engine
    assert len(fast) == len(legacy)
    if not fast:
        return
    # identical GF(2) span: stacking one basis onto the other adds no rank
    fast_m = np.array(fast)
    legacy_m = np.array(legacy)
    rank_fast = _legacy_rank_mod2(fast_m)
    assert rank_fast == _legacy_rank_mod2(legacy_m)
    stacked = np.concatenate([fast_m, legacy_m], axis=0)
    assert _legacy_rank_mod2(stacked) == rank_fast
    # and every generator is an actual cycle: d1 . z = 0
    basis = ChainBasis.of(k)
    d1 = boundary_matrix(basis, 1)
    for z in fast:
        assert not np.any(d1 @ z)


# -- end-to-end verdict parity -------------------------------------------------


def _verdict_fingerprint(task, max_rounds=1):
    verdict = decide_solvability(task, max_rounds=max_rounds)
    return (
        verdict.status,
        verdict.witness_rounds,
        None if verdict.obstruction is None else verdict.obstruction.kind,
    )


@pytest.mark.parametrize("generator", [random_single_input_task, random_sparse_task])
@pytest.mark.parametrize("seed", range(13))
def test_decision_verdict_parity(generator, seed):
    # the packed kernels must be invisible to the mathematics: same status,
    # same witness depth, same obstruction species, with the layer on or off
    cache_clear()
    with bitcore_forced():
        fast = _verdict_fingerprint(generator(seed))
    cache_clear()
    with bitcore_disabled():
        legacy = _verdict_fingerprint(generator(seed))
    assert fast == legacy
