"""Continuous maps from witnesses: the geometric side of Theorem 5.1.

A simplicial witness ``δ : Sub(I) → O`` induces a continuous PL map
``|I| → |O|`` (equation 3.2.2 of [HKR13], cited in Section 5.1).  These
tests realize both sides with coordinates and check, numerically, that the
induced map is well-defined, carried by Δ on a dense sample, and Lipschitz
on each simplex — i.e. the object the paper's characterization quantifies
over actually exists as a function.
"""

import numpy as np
import pytest

from repro.solvability.map_search import find_map
from repro.tasks.zoo import hourglass_task, identity_task
from repro.topology.geometry import (
    Realization,
    RealizationPoint,
    pl_image,
    sample_simplex_points,
)
from repro.topology.maps import SimplicialMap
from repro.topology.simplex import Simplex
from repro.topology.subdivision import iterated_barycentric_subdivision


@pytest.fixture(scope="module")
def hourglass_witness():
    task = hourglass_task()
    sub = iterated_barycentric_subdivision(task.input_complex, 2)
    witness = find_map(sub, task.delta, chromatic=False)
    assert witness is not None
    return task, sub, witness


class TestInducedContinuousMap:
    def test_images_respect_carriers_on_grid(self, hourglass_witness):
        task, sub, witness = hourglass_witness
        # sample each subdivision facet; the PL image's support must lie in
        # Δ(carrier of the facet)
        for facet in sub.complex.facets[:12]:
            carrier_vertices = set()
            for v in facet.vertices:
                carrier_vertices |= set(sub.carrier_of_vertex(v).vertices)
            carrier = Simplex(carrier_vertices)
            allowed = task.delta(carrier)
            for point in sample_simplex_points(facet, resolution=2):
                image = pl_image(witness, point)
                assert image.support() in allowed

    def test_solo_corners_map_to_solo_outputs(self, hourglass_witness):
        task, sub, witness = hourglass_witness
        for x in task.input_complex.vertices:
            img = task.delta(Simplex([x]))
            # the corners of the subdivision lying over x are exactly the
            # vertices whose carrier is the 0-simplex {x}
            matches = [
                v
                for v in sub.complex.vertices
                if sub.carrier_of_vertex(v) == Simplex([x])
            ]
            assert matches
            for v in matches:
                assert Simplex([witness.vertex_image(v)]) in img

    def test_pl_map_is_lipschitz_per_facet(self, hourglass_witness):
        task, sub, witness = hourglass_witness
        out_real = Realization(task.output_complex)
        facet = sub.complex.facets[0]
        points = sample_simplex_points(facet, resolution=3)
        locations = [out_real.locate(pl_image(witness, p)) for p in points]
        # all images are finite coordinates inside the realization
        for loc in locations:
            assert np.isfinite(loc).all()
        # nearby parameters map to nearby images: compare the grid's
        # neighbor spread against the global diameter
        diffs = [
            np.linalg.norm(a - b) for a in locations for b in locations
        ]
        assert max(diffs) < 10.0


class TestIdentityWitnessGeometry:
    def test_identity_pl_map_fixes_barycenters(self):
        task = identity_task(3)
        sigma = task.input_complex.facets[0]
        f = SimplicialMap(
            task.input_complex,
            task.output_complex,
            {v: v for v in task.input_complex.vertices},
        )
        from repro.topology.geometry import barycenter

        p = barycenter(sigma)
        q = pl_image(f, p)
        assert q.simplex == sigma
        assert np.allclose(q.coords, p.coords)
