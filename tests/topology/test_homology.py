"""Unit tests for the homology machinery."""

import itertools

import numpy as np
import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.homology import (
    ChainBasis,
    betti_numbers,
    boundary_matrix,
    cycle_space_generators,
    edge_chain,
    homology_torsion,
    integer_rank,
    is_null_homologous,
    rank_mod2,
    smith_normal_form,
    solve_integer,
    solve_mod2,
)


@pytest.fixture
def sphere():
    """The boundary of a 3-simplex: a 2-sphere."""
    return SimplicialComplex(itertools.combinations(["a", "b", "c", "d"], 3))


@pytest.fixture
def torus():
    """The standard 9-vertex grid-quotient triangulation of the torus."""
    facets = []
    for i in range(3):
        for j in range(3):
            a = (i, j)
            b = ((i + 1) % 3, j)
            c = (i, (j + 1) % 3)
            d = ((i + 1) % 3, (j + 1) % 3)
            facets.append((a, b, c))
            facets.append((b, c, d))
    return SimplicialComplex(facets)


@pytest.fixture
def projective_plane():
    """The minimal 6-vertex triangulation of RP² (icosahedron quotient)."""
    facets = [
        (1, 2, 3), (1, 3, 4), (1, 4, 5), (1, 5, 6), (1, 6, 2),
        (2, 3, 5), (3, 4, 6), (4, 5, 2), (5, 6, 3), (6, 2, 4),
    ]
    return SimplicialComplex(facets)


class TestBoundaryMatrix:
    def test_shapes(self, disk):
        basis = ChainBasis.of(disk)
        d1 = boundary_matrix(basis, 1)
        d2 = boundary_matrix(basis, 2)
        assert d1.shape == (3, 3)
        assert d2.shape == (3, 1)

    def test_boundary_squares_to_zero(self, torus):
        basis = ChainBasis.of(torus)
        d1 = boundary_matrix(basis, 1)
        d2 = boundary_matrix(basis, 2)
        assert not (d1 @ d2).any()

    def test_d0_is_zero(self, disk):
        basis = ChainBasis.of(disk)
        assert not boundary_matrix(basis, 0).any()

    def test_column_signs_alternate(self, disk):
        basis = ChainBasis.of(disk)
        d2 = boundary_matrix(basis, 2)
        col = d2[:, 0]
        assert sorted(col.tolist()) == [-1, 1, 1] or sorted(col.tolist()) == [-1, -1, 1]


class TestExactLinearAlgebra:
    def test_rank_mod2(self):
        a = np.array([[1, 1], [1, 1]])
        assert rank_mod2(a) == 1
        assert rank_mod2(np.eye(3, dtype=int)) == 3
        assert rank_mod2(2 * np.eye(3, dtype=int)) == 0  # even entries vanish

    def test_solve_mod2_solution(self):
        a = np.array([[1, 0], [1, 1]])
        b = np.array([1, 0])
        x = solve_mod2(a, b)
        assert x is not None
        assert ((a @ x) % 2 == b % 2).all()

    def test_solve_mod2_unsolvable(self):
        a = np.array([[1, 1], [1, 1]])
        b = np.array([1, 0])
        assert solve_mod2(a, b) is None

    def test_smith_normal_form_diagonal(self):
        a = np.array([[2, 4], [6, 8]])
        s, u, v = smith_normal_form(a)
        assert (np.array(u, dtype=float) @ a @ np.array(v, dtype=float)
                == np.array(s, dtype=float)).all()
        assert s[0, 1] == 0 and s[1, 0] == 0
        assert s[1, 1] % s[0, 0] == 0

    def test_smith_normal_form_invariant_factors(self):
        a = np.array([[2, 0], [0, 3]])
        s, _, _ = smith_normal_form(a)
        assert [int(s[0, 0]), int(s[1, 1])] == [1, 6]

    def test_smith_unimodular_transforms(self):
        rng = np.random.RandomState(3)
        a = rng.randint(-4, 5, size=(4, 5))
        s, u, v = smith_normal_form(a)
        assert abs(round(float(np.linalg.det(np.array(u, dtype=float))))) == 1
        assert abs(round(float(np.linalg.det(np.array(v, dtype=float))))) == 1

    def test_integer_rank(self):
        assert integer_rank(np.array([[2, 4], [1, 2]])) == 1
        assert integer_rank(np.zeros((2, 2), dtype=int)) == 0

    def test_solve_integer_solution(self):
        a = np.array([[2, 0], [0, 3]])
        b = np.array([4, 9])
        x = solve_integer(a, b)
        assert x is not None
        assert (a @ np.array(x, dtype=int) == b).all()

    def test_solve_integer_divisibility_failure(self):
        a = np.array([[2]])
        assert solve_integer(a, np.array([3])) is None

    def test_solve_integer_inconsistent(self):
        a = np.array([[1], [0]])
        assert solve_integer(a, np.array([1, 1])) is None

    def test_solve_integer_underdetermined(self):
        a = np.array([[1, 1]])
        x = solve_integer(a, np.array([5]))
        assert x is not None and int(sum(x)) == 5


class TestBettiNumbers:
    def test_disk(self, disk):
        assert betti_numbers(disk) == (1, 0, 0)

    def test_circle(self, circle):
        assert betti_numbers(circle) == (1, 1)

    def test_sphere(self, sphere):
        assert betti_numbers(sphere) == (1, 0, 1)

    def test_torus(self, torus):
        assert betti_numbers(torus) == (1, 2, 1)

    def test_two_components(self):
        k = SimplicialComplex([("a", "b"), ("c", "d")])
        assert betti_numbers(k)[0] == 2

    def test_wedge_of_circles(self):
        k = SimplicialComplex(
            [("a", "b"), ("b", "c"), ("c", "a"), ("a", "d"), ("d", "e"), ("e", "a")]
        )
        assert betti_numbers(k) == (1, 2)

    def test_empty(self):
        assert betti_numbers(SimplicialComplex.empty()) == ()

    def test_projective_plane_rational(self, projective_plane):
        # over Q the projective plane looks like a point in dims 0..2
        assert betti_numbers(projective_plane) == (1, 0, 0)


class TestTorsion:
    def test_projective_plane_torsion(self, projective_plane):
        assert homology_torsion(projective_plane, 1) == (2,)

    def test_torus_torsion_free(self, torus):
        assert homology_torsion(torus, 1) == ()

    def test_no_higher_simplices(self, circle):
        assert homology_torsion(circle, 1) == ()


class TestChains:
    def test_edge_chain_cycle(self, circle):
        basis = ChainBasis.of(circle)
        z = edge_chain(basis, ["a", "b", "c", "a"])
        d1 = boundary_matrix(basis, 1)
        assert not (d1 @ z).any()

    def test_edge_chain_orientation(self, circle):
        basis = ChainBasis.of(circle)
        fwd = edge_chain(basis, ["a", "b"])
        bwd = edge_chain(basis, ["b", "a"])
        assert (fwd == -bwd).all()

    def test_edge_chain_stationary_steps_ignored(self, circle):
        basis = ChainBasis.of(circle)
        z = edge_chain(basis, ["a", "a", "b"])
        assert abs(z).sum() == 1

    def test_edge_chain_missing_edge(self, circle):
        basis = ChainBasis.of(circle)
        with pytest.raises(ValueError):
            edge_chain(basis, ["a", "nope"])

    def test_null_homologous_in_disk(self, disk):
        basis = ChainBasis.of(disk)
        z = edge_chain(basis, ["a", "b", "c", "a"])
        assert is_null_homologous(disk, z, over="Z")
        assert is_null_homologous(disk, z, over="Z2")

    def test_not_null_homologous_in_circle(self, circle):
        basis = ChainBasis.of(circle)
        z = edge_chain(basis, ["a", "b", "c", "a"])
        assert not is_null_homologous(circle, z, over="Z")
        assert not is_null_homologous(circle, z, over="Z2")

    def test_unknown_ring_rejected(self, circle):
        basis = ChainBasis.of(circle)
        z = edge_chain(basis, ["a", "b", "c", "a"])
        with pytest.raises(ValueError):
            is_null_homologous(circle, z, over="Z3")

    def test_double_loop_in_projective_plane_bounds(self, projective_plane):
        # a loop generating H1(RP^2) = Z/2 does not bound, but twice it does
        basis = ChainBasis.of(projective_plane)
        # find a non-bounding cycle among fundamental cycles
        found = None
        for z in cycle_space_generators(projective_plane):
            if not is_null_homologous(projective_plane, z, over="Z"):
                found = z
                break
        assert found is not None
        assert is_null_homologous(projective_plane, 2 * found, over="Z")


class TestCycleGenerators:
    def test_count_matches_first_betti_for_graph(self, circle):
        gens = cycle_space_generators(circle)
        assert len(gens) == 1

    def test_generators_are_cycles(self, torus):
        basis = ChainBasis.of(torus)
        d1 = boundary_matrix(basis, 1)
        skel = torus.skeleton(1)
        for z in cycle_space_generators(skel):
            assert not (d1 @ z).any()

    def test_tree_has_no_cycles(self):
        tree = SimplicialComplex([("a", "b"), ("b", "c")])
        assert cycle_space_generators(tree) == []

    def test_no_edges(self):
        k = SimplicialComplex([("a",)])
        assert cycle_space_generators(k) == []
