"""Unit tests for simplicial complexes."""

import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, chrom


class TestConstruction:
    def test_closure_taken(self, disk):
        assert Simplex(["a", "b"]) in disk
        assert Simplex(["a"]) in disk
        assert len(disk) == 7

    def test_empty_complex(self):
        k = SimplicialComplex.empty()
        assert k.dim == -1
        assert len(k) == 0
        assert not k
        assert k.is_connected()  # vacuously

    def test_accepts_raw_iterables(self):
        k = SimplicialComplex([("x", "y")])
        assert Simplex(["x", "y"]) in k

    def test_from_facets_alias(self):
        k = SimplicialComplex.from_facets([("a", "b")])
        assert k.dim == 1

    def test_name_in_repr(self):
        k = SimplicialComplex([("a",)], name="K")
        assert "K" in repr(k)


class TestFacets:
    def test_facets_are_maximal(self, two_triangles):
        assert len(two_triangles.facets) == 2
        assert all(f.dim == 2 for f in two_triangles.facets)

    def test_redundant_faces_not_facets(self):
        k = SimplicialComplex([("a", "b", "c"), ("a", "b")])
        assert len(k.facets) == 1

    def test_mixed_dimension_facets(self):
        k = SimplicialComplex([("a", "b", "c"), ("d", "e")])
        assert {f.dim for f in k.facets} == {1, 2}
        assert not k.is_pure()

    def test_pure(self, disk, circle):
        assert disk.is_pure()
        assert circle.is_pure()

    def test_facets_deterministic_order(self):
        k1 = SimplicialComplex([("b", "c"), ("a", "b")])
        k2 = SimplicialComplex([("a", "b"), ("b", "c")])
        assert k1.facets == k2.facets


class TestAccessors:
    def test_dim(self, disk, circle):
        assert disk.dim == 2
        assert circle.dim == 1

    def test_vertices_sorted(self, circle):
        assert list(circle.vertices) == ["a", "b", "c"]

    def test_simplices_by_dim(self, disk):
        assert len(disk.simplices(dim=0)) == 3
        assert len(disk.simplices(dim=1)) == 3
        assert len(disk.simplices(dim=2)) == 1
        assert disk.simplices(dim=5) == ()

    def test_f_vector(self, disk):
        assert disk.f_vector() == (3, 3, 1)

    def test_euler_characteristic(self, disk, circle):
        assert disk.euler_characteristic() == 1
        assert circle.euler_characteristic() == 0

    def test_len_counts_all_simplices(self, circle):
        assert len(circle) == 6

    def test_contains_raw(self, disk):
        assert ("a", "b") in disk


class TestEquality:
    def test_equal_by_simplices(self):
        a = SimplicialComplex([("x", "y")])
        b = SimplicialComplex([("y", "x")])
        assert a == b
        assert hash(a) == hash(b)

    def test_name_irrelevant_for_equality(self):
        a = SimplicialComplex([("x",)], name="A")
        b = SimplicialComplex([("x",)], name="B")
        assert a == b

    def test_not_equal(self, disk, circle):
        assert disk != circle


class TestSubcomplexes:
    def test_skeleton(self, disk):
        skel = disk.skeleton(1)
        assert skel.dim == 1
        assert len(skel.simplices(dim=1)) == 3

    def test_skeleton_zero(self, disk):
        assert disk.skeleton(0).dim == 0

    def test_star(self, two_triangles):
        st = two_triangles.star("a")
        assert Simplex(["a", "b", "c"]) in st
        assert Simplex(["b", "c", "d"]) not in st

    def test_link_of_interior_vertex(self, two_triangles):
        lk = two_triangles.link("b")
        assert Simplex(["a", "c"]) in lk
        assert Simplex(["c", "d"]) in lk
        assert "b" not in lk.vertices

    def test_link_of_corner(self, disk):
        lk = disk.link("a")
        assert lk == SimplicialComplex([("b", "c")])

    def test_induced(self, two_triangles):
        sub = two_triangles.induced({"a", "b", "c"})
        assert sub == SimplicialComplex([("a", "b", "c")])

    def test_subcomplex_checked(self, disk):
        with pytest.raises(ValueError):
            disk.subcomplex([("a", "z")])

    def test_union_and_intersection(self, disk):
        other = SimplicialComplex([("c", "d")])
        u = disk.union(other)
        assert ("c", "d") in u and ("a", "b", "c") in u
        inter = u.intersection(disk)
        assert inter == disk

    def test_is_subcomplex_of(self, disk):
        assert disk.skeleton(1).is_subcomplex_of(disk)
        assert not disk.is_subcomplex_of(disk.skeleton(1))


class TestConnectivity:
    def test_connected(self, disk):
        assert disk.is_connected()

    def test_disconnected(self):
        k = SimplicialComplex([("a", "b"), ("c", "d")])
        assert not k.is_connected()
        assert len(k.connected_components()) == 2

    def test_isolated_vertex_counts(self):
        k = SimplicialComplex([("a", "b"), ("z",)])
        assert not k.is_connected()

    def test_component_of(self):
        k = SimplicialComplex([("a", "b"), ("c", "d")])
        assert k.component_of("a") == frozenset({"a", "b"})
        with pytest.raises(KeyError):
            k.component_of("nope")

    def test_components_deterministic(self):
        k = SimplicialComplex([("c", "d"), ("a", "b")])
        comps = k.connected_components()
        assert comps[0] == frozenset({"a", "b"})

    def test_graph_has_all_vertices(self, disk):
        g = disk.graph()
        assert set(g.nodes) == set(disk.vertices)
        assert g.number_of_edges() == 3


class TestLinkConnectivity:
    def test_disk_link_connected(self, disk):
        assert disk.is_link_connected()

    def test_bowtie_not_link_connected(self, bowtie):
        assert not bowtie.is_link_connected()
        comps = bowtie.link_components("w")
        assert len(comps) == 2
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c", "d"}) in comps

    def test_two_triangles_link_connected(self, two_triangles):
        assert two_triangles.is_link_connected()

    def test_path_endpoint_links(self):
        # a path's interior vertex has a 2-point (disconnected) link
        k = SimplicialComplex([("a", "b"), ("b", "c")])
        assert len(k.link_components("b")) == 2
        assert not k.is_link_connected()


class TestChromaticAccessors:
    def test_colors(self):
        k = SimplicialComplex([chrom((0, "a"), (1, "b"))])
        assert k.colors() == frozenset({0, 1})

    def test_is_chromatic(self, triangle_complex, disk):
        assert triangle_complex.is_chromatic()
        assert not disk.is_chromatic()
