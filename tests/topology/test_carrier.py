"""Unit tests for carrier maps."""

import pytest

from repro.topology.carrier import CarrierMap, CarrierMapError
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, chrom


@pytest.fixture
def edge_domain():
    return SimplicialComplex([("x", "y")])


@pytest.fixture
def path_codomain():
    return SimplicialComplex([("p", "q"), ("q", "r")])


@pytest.fixture
def simple_map(edge_domain, path_codomain):
    return CarrierMap(
        edge_domain,
        path_codomain,
        {
            Simplex(["x"]): [("p",)],
            Simplex(["y"]): [("r",)],
            Simplex(["x", "y"]): [("p", "q"), ("q", "r")],
        },
    )


class TestConstruction:
    def test_basic(self, simple_map):
        assert simple_map(Simplex(["x"])).vertices == ("p",)

    def test_missing_images_default_empty(self, edge_domain, path_codomain):
        cm = CarrierMap(edge_domain, path_codomain, {}, check=False)
        assert not cm(Simplex(["x"]))

    def test_domain_membership_checked(self, edge_domain, path_codomain):
        with pytest.raises(CarrierMapError):
            CarrierMap(edge_domain, path_codomain, {Simplex(["zz"]): [("p",)]})

    def test_codomain_membership_checked(self, edge_domain, path_codomain):
        with pytest.raises(CarrierMapError):
            CarrierMap(
                edge_domain, path_codomain, {Simplex(["x"]): [("nope",)]}
            )

    def test_accepts_complex_images(self, edge_domain, path_codomain):
        cm = CarrierMap(
            edge_domain,
            path_codomain,
            {Simplex(["x", "y"]): path_codomain},
            check=False,
        )
        assert cm(Simplex(["x", "y"])) == path_codomain

    def test_raw_keys_converted(self, edge_domain, path_codomain):
        cm = CarrierMap(edge_domain, path_codomain, {("x",): [("p",)]}, check=False)
        assert cm(Simplex(["x"])).vertices == ("p",)


class TestEvaluation:
    def test_call_on_simplex(self, simple_map):
        img = simple_map(Simplex(["x", "y"]))
        assert img.dim == 1

    def test_call_on_iterable(self, simple_map):
        img = simple_map([Simplex(["x"]), Simplex(["y"])])
        assert set(img.vertices) == {"p", "r"}

    def test_call_on_complex(self, simple_map, edge_domain):
        img = simple_map(edge_domain)
        assert set(img.vertices) == {"p", "q", "r"}

    def test_image(self, simple_map):
        assert set(simple_map.image().vertices) == {"p", "q", "r"}

    def test_items_in_canonical_order(self, simple_map):
        keys = [s for s, _ in simple_map.items()]
        assert keys == sorted(keys, key=Simplex.sort_key)

    def test_call_on_bad_type(self, simple_map):
        with pytest.raises(TypeError):
            simple_map(42)


class TestPredicates:
    def test_monotonic(self, simple_map):
        assert simple_map.is_monotonic()

    def test_not_monotonic_detected(self, edge_domain, path_codomain):
        cm = CarrierMap(
            edge_domain,
            path_codomain,
            {
                Simplex(["x"]): [("p",)],
                Simplex(["x", "y"]): [("q", "r")],  # p missing
            },
            check=False,
        )
        assert not cm.is_monotonic()
        with pytest.raises(CarrierMapError):
            cm.validate()

    def test_rigid(self, simple_map):
        assert simple_map.is_rigid()

    def test_not_rigid_dimension_drop(self, edge_domain, path_codomain):
        cm = CarrierMap(
            edge_domain,
            path_codomain,
            {Simplex(["x", "y"]): [("p",)]},  # 0-dim image of an edge
            check=False,
        )
        assert not cm.is_rigid()

    def test_strictness(self, simple_map, edge_domain, path_codomain):
        assert simple_map.is_strict()
        cm = CarrierMap(edge_domain, path_codomain, {}, check=False)
        assert not cm.is_strict()

    def test_chromatic(self):
        dom = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        cod = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        cm = CarrierMap(
            dom,
            cod,
            {
                chrom((0, "x")): [chrom((0, "p"))],
                chrom((1, "y")): [chrom((1, "q"))],
                chrom((0, "x"), (1, "y")): [chrom((0, "p"), (1, "q"))],
            },
        )
        assert cm.is_chromatic()

    def test_not_chromatic_wrong_color(self):
        dom = ChromaticComplex([chrom((0, "x"))])
        cod = ChromaticComplex([chrom((1, "p"))])
        cm = CarrierMap(dom, cod, {chrom((0, "x")): [chrom((1, "p"))]}, check=False)
        assert not cm.is_chromatic()


class TestTransformations:
    def test_monotonize_prunes(self, edge_domain, path_codomain):
        cm = CarrierMap(
            edge_domain,
            path_codomain,
            {
                Simplex(["x"]): [("p",), ("r",)],
                Simplex(["y"]): [("r",)],
                Simplex(["x", "y"]): [("q", "r")],
            },
            check=False,
        )
        fixed = cm.monotonize()
        assert fixed.is_monotonic()
        assert set(fixed(Simplex(["x"])).vertices) == {"r"}

    def test_monotonize_noop_when_monotone(self, simple_map):
        assert simple_map.monotonize() == simple_map

    def test_restricted_to(self, simple_map, edge_domain):
        sub = SimplicialComplex([("x",)])
        r = simple_map.restricted_to(sub)
        assert r.domain == sub
        assert r(Simplex(["x"])).vertices == ("p",)

    def test_restricted_to_non_subcomplex(self, simple_map):
        with pytest.raises(CarrierMapError):
            simple_map.restricted_to(SimplicialComplex([("zzz",)]))

    def test_with_codomain(self, simple_map, path_codomain):
        bigger = path_codomain.union(SimplicialComplex([("s",)]))
        rebased = simple_map.with_codomain(bigger)
        assert rebased.codomain == bigger

    def test_compose(self, edge_domain, path_codomain):
        first = CarrierMap(
            edge_domain,
            path_codomain,
            {
                Simplex(["x"]): [("p",)],
                Simplex(["y"]): [("r",)],
                Simplex(["x", "y"]): [("p", "q"), ("q", "r")],
            },
        )
        final = SimplicialComplex([("u", "v")])
        second = CarrierMap(
            path_codomain,
            final,
            {
                Simplex(["p"]): [("u",)],
                Simplex(["q"]): [("u",), ("v",)],
                Simplex(["r"]): [("v",)],
                Simplex(["p", "q"]): [("u", "v")],
                Simplex(["q", "r"]): [("u", "v")],
            },
            check=False,
        )
        comp = first.compose(second)
        assert comp.domain == edge_domain
        assert comp.codomain == final
        assert set(comp(Simplex(["x", "y"])).vertices) == {"u", "v"}
        assert comp(Simplex(["x"])).vertices == ("u",)


class TestProtocol:
    def test_equality(self, simple_map, edge_domain, path_codomain):
        again = CarrierMap(
            edge_domain,
            path_codomain,
            {
                Simplex(["x"]): [("p",)],
                Simplex(["y"]): [("r",)],
                Simplex(["x", "y"]): [("p", "q"), ("q", "r")],
            },
        )
        assert simple_map == again
        assert hash(simple_map) == hash(again)

    def test_repr(self, simple_map):
        assert "CarrierMap" in repr(simple_map)
