"""Unit tests for simplicial maps and the carried-by relation."""

import pytest

from repro.topology.carrier import CarrierMap
from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.maps import (
    NotSimplicialError,
    SimplicialMap,
    chromatic_projection,
    identity_map,
)
from repro.topology.simplex import Simplex, Vertex, chrom
from repro.topology.subdivision import chromatic_subdivision


@pytest.fixture
def square_to_edge():
    # collapse a path of two edges onto a single edge
    dom = SimplicialComplex([("a", "b"), ("b", "c")])
    cod = SimplicialComplex([("u", "v")])
    return SimplicialMap(dom, cod, {"a": "u", "b": "v", "c": "u"})


class TestValidation:
    def test_valid(self, square_to_edge):
        square_to_edge.validate()

    def test_missing_vertex(self):
        dom = SimplicialComplex([("a", "b")])
        cod = SimplicialComplex([("u", "v")])
        with pytest.raises(NotSimplicialError):
            SimplicialMap(dom, cod, {"a": "u"})

    def test_image_outside_codomain(self):
        dom = SimplicialComplex([("a",)])
        cod = SimplicialComplex([("u",)])
        with pytest.raises(NotSimplicialError):
            SimplicialMap(dom, cod, {"a": "zzz"})

    def test_non_simplicial(self):
        dom = SimplicialComplex([("a", "b")])
        cod = SimplicialComplex([("u",), ("v",)])  # no edge
        with pytest.raises(NotSimplicialError):
            SimplicialMap(dom, cod, {"a": "u", "b": "v"})

    def test_collapse_is_simplicial(self):
        dom = SimplicialComplex([("a", "b")])
        cod = SimplicialComplex([("u",)])
        f = SimplicialMap(dom, cod, {"a": "u", "b": "u"})
        assert f.apply(Simplex(["a", "b"])) == Simplex(["u"])


class TestEvaluation:
    def test_vertex_image(self, square_to_edge):
        assert square_to_edge("a") == "u"
        assert square_to_edge.vertex_image("b") == "v"

    def test_apply(self, square_to_edge):
        assert square_to_edge(Simplex(["a", "b"])) == Simplex(["u", "v"])

    def test_image_complex(self, square_to_edge):
        img = square_to_edge.image_complex()
        assert img == SimplicialComplex([("u", "v")])

    def test_as_dict_is_copy(self, square_to_edge):
        d = square_to_edge.as_dict()
        d["a"] = "corrupted"
        assert square_to_edge("a") == "u"


class TestChromatic:
    def test_is_chromatic(self):
        dom = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        cod = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        f = SimplicialMap(
            dom, cod, {Vertex(0, "x"): Vertex(0, "p"), Vertex(1, "y"): Vertex(1, "q")}
        )
        assert f.is_chromatic()

    def test_color_flip_not_chromatic(self):
        dom = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        cod = ChromaticComplex([chrom((0, "p"), (1, "q"))])
        f = SimplicialMap(
            dom, cod, {Vertex(0, "x"): Vertex(1, "q"), Vertex(1, "y"): Vertex(0, "p")}
        )
        assert not f.is_chromatic()

    def test_chromatic_projection_helper(self):
        dom = ChromaticComplex([chrom((0, ("x", 1)), (1, ("y", 2)))])
        cod = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        f = chromatic_projection(dom, cod, lambda v: v.value[0])
        assert f.is_chromatic()
        assert f(Vertex(0, ("x", 1))) == Vertex(0, "x")


class TestCarriedBy:
    def test_identity_carried(self, triangle_complex):
        delta = CarrierMap(
            triangle_complex,
            triangle_complex,
            {s: [s] for s in triangle_complex.simplices()},
        )
        f = identity_map(triangle_complex)
        assert f.is_carried_by(delta)
        assert f.carried_by_violation(delta) is None

    def test_subdivision_carried(self, triangle_complex):
        sub = chromatic_subdivision(triangle_complex)
        # map every subdivision vertex to the base vertex of its color
        base_by_color = {v.color: v for v in triangle_complex.vertices}
        f = SimplicialMap(
            sub.complex,
            triangle_complex,
            {w: base_by_color[w.color] for w in sub.complex.vertices},
        )
        delta = CarrierMap(
            triangle_complex,
            triangle_complex,
            {s: [s] for s in triangle_complex.simplices()},
        )
        assert f.is_carried_by(delta, via=sub.carrier)

    def test_violation_reported(self, triangle_complex):
        sub = chromatic_subdivision(triangle_complex)
        corner = {v.color: v for v in triangle_complex.vertices}
        # send everything to the single color-0 corner: breaks the carrier
        # images of the color-1 and color-2 vertices
        f = SimplicialMap(
            sub.complex,
            triangle_complex,
            {w: corner[0] for w in sub.complex.vertices},
            check=False,
        )
        delta = CarrierMap(
            triangle_complex,
            triangle_complex,
            {s: [s] for s in triangle_complex.simplices()},
        )
        assert not f.is_carried_by(delta, via=sub.carrier)
        assert f.carried_by_violation(delta, via=sub.carrier) is not None


class TestAlgebra:
    def test_compose(self):
        a = SimplicialComplex([("a",)])
        b = SimplicialComplex([("b",)])
        c = SimplicialComplex([("c",)])
        f = SimplicialMap(a, b, {"a": "b"})
        g = SimplicialMap(b, c, {"b": "c"})
        assert f.compose(g)("a") == "c"

    def test_restriction(self, square_to_edge):
        sub = SimplicialComplex([("a", "b")])
        r = square_to_edge.restricted_to(sub)
        assert r.domain == sub
        with pytest.raises(ValueError):
            square_to_edge.restricted_to(SimplicialComplex([("zz",)]))

    def test_identity(self, disk):
        f = identity_map(disk)
        assert f("a") == "a"
        assert f.image_complex() == disk

    def test_equality(self, square_to_edge):
        other = SimplicialMap(
            square_to_edge.domain,
            square_to_edge.codomain,
            {"a": "u", "b": "v", "c": "u"},
        )
        assert square_to_edge == other
        assert hash(square_to_edge) == hash(other)
