"""Property-based tests (hypothesis) for the topology substrate."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.complexes import SimplicialComplex
from repro.topology.homology import (
    ChainBasis,
    betti_numbers,
    boundary_matrix,
    integer_rank,
    rank_mod2,
    smith_normal_form,
    solve_integer,
    solve_mod2,
)
from repro.topology.simplex import Simplex, Vertex
from repro.topology.subdivision import (
    chromatic_subdivision,
    ordered_partitions,
)

# -- strategies -------------------------------------------------------------

vertices = st.sampled_from(list("abcdefgh"))
raw_simplices = st.sets(vertices, min_size=1, max_size=4).map(Simplex)
complexes = st.lists(raw_simplices, min_size=1, max_size=8).map(SimplicialComplex)

small_matrices = st.integers(1, 4).flatmap(
    lambda r: st.integers(1, 4).flatmap(
        lambda c: st.lists(
            st.lists(st.integers(-6, 6), min_size=c, max_size=c),
            min_size=r,
            max_size=r,
        ).map(lambda rows: np.array(rows, dtype=np.int64))
    )
)

chromatic_facets = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=4,
).map(
    lambda combos: SimplicialComplex(
        Simplex(Vertex(i, v) for i, v in enumerate(c)) for c in combos
    )
)


class TestComplexProperties:
    @given(complexes)
    @settings(max_examples=60, deadline=None)
    def test_closure_is_downward_closed(self, k):
        for s in k.simplices():
            for f in s.faces():
                assert f in k

    @given(complexes)
    @settings(max_examples=60, deadline=None)
    def test_facets_are_maximal_and_cover(self, k):
        facets = set(k.facets)
        for s in k.simplices():
            assert any(s <= f for f in facets)
        for f in facets:
            assert not any(f < g for g in facets if g != f)

    @given(complexes)
    @settings(max_examples=40, deadline=None)
    def test_euler_equals_alternating_betti(self, k):
        # Euler–Poincaré: χ = Σ (-1)^k b_k
        chi = k.euler_characteristic()
        betti = betti_numbers(k)
        assert chi == sum((-1) ** d * b for d, b in enumerate(betti))

    @given(complexes, vertices)
    @settings(max_examples=60, deadline=None)
    def test_link_star_relation(self, k, v):
        if v not in set(k.vertices):
            return
        lk = k.link(v)
        for s in lk.simplices():
            assert s.with_vertex(v) in k

    @given(complexes)
    @settings(max_examples=40, deadline=None)
    def test_skeleton_subcomplex(self, k):
        for d in range(k.dim + 1):
            assert k.skeleton(d).is_subcomplex_of(k)


class TestOrderedPartitionProperties:
    @given(st.sets(st.integers(0, 4), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_partition_properties(self, items):
        count = 0
        seen = set()
        for blocks in ordered_partitions(items):
            count += 1
            assert blocks not in seen
            seen.add(blocks)
            flat = [x for b in blocks for x in b]
            assert len(flat) == len(items)
            assert set(flat) == items
        fubini = {1: 1, 2: 3, 3: 13, 4: 75}
        assert count == fubini[len(items)]


class TestSubdivisionProperties:
    @given(chromatic_facets)
    @settings(max_examples=25, deadline=None)
    def test_chromatic_subdivision_invariants(self, k):
        from repro.topology.chromatic import ChromaticComplex

        ck = ChromaticComplex(k.facets)
        sub = chromatic_subdivision(ck)
        assert sub.complex.is_chromatic()
        assert sub.complex.is_pure()
        assert sub.complex.dim == ck.dim
        # Euler characteristic is a homeomorphism invariant
        assert sub.complex.euler_characteristic() == ck.euler_characteristic()

    @given(chromatic_facets)
    @settings(max_examples=20, deadline=None)
    def test_carrier_monotone(self, k):
        from repro.topology.chromatic import ChromaticComplex

        sub = chromatic_subdivision(ChromaticComplex(k.facets))
        assert sub.carrier.is_monotonic()


class TestLinearAlgebraProperties:
    @given(small_matrices)
    @settings(max_examples=80, deadline=None)
    def test_snf_is_valid_decomposition(self, a):
        s, u, v = smith_normal_form(a)
        lhs = np.array(u, dtype=object) @ np.array(a, dtype=object) @ np.array(
            v, dtype=object
        )
        assert (lhs == s).all()
        # diagonal with divisibility chain
        r = min(s.shape)
        for i in range(s.shape[0]):
            for j in range(s.shape[1]):
                if i != j:
                    assert s[i, j] == 0
        diag = [int(s[i, i]) for i in range(r)]
        for x, y in zip(diag, diag[1:]):
            if x != 0:
                assert y % x == 0
            else:
                assert y == 0

    @given(small_matrices)
    @settings(max_examples=80, deadline=None)
    def test_integer_rank_matches_float_rank(self, a):
        assert integer_rank(a) == np.linalg.matrix_rank(a.astype(float))

    @given(small_matrices, st.data())
    @settings(max_examples=60, deadline=None)
    def test_solve_integer_roundtrip(self, a, data):
        x = np.array(
            data.draw(
                st.lists(st.integers(-3, 3), min_size=a.shape[1], max_size=a.shape[1])
            ),
            dtype=np.int64,
        )
        b = a @ x
        sol = solve_integer(a, b)
        assert sol is not None
        assert (a @ np.array(sol, dtype=np.int64) == b).all()

    @given(small_matrices, st.data())
    @settings(max_examples=60, deadline=None)
    def test_solve_mod2_roundtrip(self, a, data):
        x = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=a.shape[1], max_size=a.shape[1])
            ),
            dtype=np.int64,
        )
        b = (a @ x) % 2
        sol = solve_mod2(a, b)
        assert sol is not None
        assert ((a @ sol) % 2 == b).all()

    @given(small_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rank_mod2_at_most_integer_rank(self, a):
        assert rank_mod2(a) <= integer_rank(a)
