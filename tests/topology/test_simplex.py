"""Unit tests for vertices and simplices."""

import pytest

from repro.topology.simplex import (
    Simplex,
    Vertex,
    chrom,
    color_of,
    simplex,
    vertex_sort_key,
)


class TestVertex:
    def test_fields(self):
        v = Vertex(1, "x")
        assert v.color == 1
        assert v.value == "x"

    def test_equality_and_hash(self):
        assert Vertex(0, "a") == Vertex(0, "a")
        assert Vertex(0, "a") != Vertex(1, "a")
        assert Vertex(0, "a") != Vertex(0, "b")
        assert hash(Vertex(2, (1, 2))) == hash(Vertex(2, (1, 2)))

    def test_with_value(self):
        v = Vertex(3, "old")
        w = v.with_value("new")
        assert w.color == 3 and w.value == "new"
        assert v.value == "old"

    def test_non_int_color_rejected(self):
        with pytest.raises(TypeError):
            Vertex("zero", "x")

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            Vertex(0, ["list"])

    def test_ordering_by_color(self):
        assert Vertex(0, "z") < Vertex(1, "a")

    def test_repr(self):
        assert repr(Vertex(1, "v")) == "(1:'v')"

    def test_color_of(self):
        assert color_of(Vertex(2, "x")) == 2
        assert color_of("plain") is None

    def test_nested_simplex_value(self):
        inner = chrom((0, "a"))
        v = Vertex(0, inner)
        assert v.value == inner


class TestSimplexConstruction:
    def test_from_iterable(self):
        s = Simplex(["a", "b"])
        assert len(s) == 2
        assert s.dim == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Simplex([])

    def test_duplicates_collapse(self):
        assert Simplex(["a", "a", "b"]) == Simplex(["a", "b"])

    def test_helper_constructors(self):
        assert simplex("a", "b") == Simplex(["a", "b"])
        s = chrom((0, "x"), (1, "y"))
        assert s.colors() == frozenset({0, 1})

    def test_singleton(self):
        s = Simplex(["v"])
        assert s.dim == 0
        assert "v" in s


class TestSimplexStructure:
    def test_sorted_vertices_deterministic(self):
        s = chrom((2, "c"), (0, "a"), (1, "b"))
        assert [v.color for v in s.sorted_vertices()] == [0, 1, 2]

    def test_iteration_order(self):
        s = chrom((1, "b"), (0, "a"))
        assert [v.color for v in s] == [0, 1]

    def test_colors_of_colorless_raises(self):
        with pytest.raises(ValueError):
            Simplex(["a", "b"]).colors()

    def test_is_chromatic(self):
        assert chrom((0, "a"), (1, "b")).is_chromatic()
        assert not Simplex(["a"]).is_chromatic()
        assert not Simplex([Vertex(0, "a"), Vertex(0, "b")]).is_chromatic()

    def test_vertex_of_color(self):
        s = chrom((0, "a"), (1, "b"))
        assert s.vertex_of_color(1) == Vertex(1, "b")
        with pytest.raises(KeyError):
            s.vertex_of_color(2)

    def test_vertex_of_color_duplicate_raises(self):
        s = Simplex([Vertex(0, "a"), Vertex(0, "b")])
        with pytest.raises(ValueError):
            s.vertex_of_color(0)

    def test_sort_key_orders_by_dimension_first(self):
        small = chrom((0, "a"))
        big = chrom((1, "a"), (2, "b"))
        assert small.sort_key() < big.sort_key()


class TestFaces:
    def test_face_count(self, triangle):
        assert len(triangle.faces()) == 7  # 3 + 3 + 1

    def test_faces_of_dimension(self, triangle):
        assert len(triangle.faces(dim=0)) == 3
        assert len(triangle.faces(dim=1)) == 3
        assert len(triangle.faces(dim=2)) == 1
        assert triangle.faces(dim=3) == ()
        assert triangle.faces(dim=-1) == ()

    def test_proper_faces_excludes_self(self, triangle):
        assert triangle not in triangle.proper_faces()
        assert len(triangle.proper_faces()) == 6

    def test_boundary(self, triangle):
        bd = triangle.boundary()
        assert len(bd) == 3
        assert all(f.dim == 1 for f in bd)

    def test_boundary_of_vertex_empty(self):
        assert Simplex(["v"]).boundary() == ()

    def test_face_relation(self, triangle):
        edge = Simplex(list(triangle.vertices)[:2])
        assert edge <= triangle
        assert not (triangle <= edge)


class TestSimplexAlgebra:
    def test_union(self):
        s = Simplex(["a"]).union(Simplex(["b"]))
        assert s == Simplex(["a", "b"])

    def test_intersection(self):
        a = Simplex(["a", "b"])
        b = Simplex(["b", "c"])
        assert a.intersection(b) == Simplex(["b"])
        assert a.intersection(Simplex(["z"])) is None

    def test_without(self):
        s = Simplex(["a", "b"])
        assert s.without("a") == Simplex(["b"])
        assert Simplex(["a"]).without("a") is None

    def test_with_vertex(self):
        assert Simplex(["a"]).with_vertex("b") == Simplex(["a", "b"])

    def test_replace_vertex(self):
        s = Simplex(["a", "b"]).replace_vertex("a", "z")
        assert s == Simplex(["z", "b"])

    def test_replace_missing_raises(self):
        with pytest.raises(KeyError):
            Simplex(["a"]).replace_vertex("q", "z")

    def test_contains(self):
        s = Simplex(["a", "b"])
        assert "a" in s and "z" not in s


class TestSortKey:
    def test_mixed_types_sortable(self):
        items = [Vertex(0, "x"), "plain", 42]
        assert sorted(items, key=vertex_sort_key)  # no TypeError

    def test_vertices_sort_before_raw(self):
        assert vertex_sort_key(Vertex(5, "z")) < vertex_sort_key("a")
