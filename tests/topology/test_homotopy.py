"""Unit tests for the edge-path group and budgeted contractibility."""

import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.homotopy import (
    Presentation,
    cyclic_reduce,
    free_reduce,
    invert,
    is_null_homotopic,
    loop_word,
    pi1_presentation,
)


class TestWords:
    def test_free_reduce(self):
        assert free_reduce([1, -1]) == ()
        assert free_reduce([1, 2, -2, -1]) == ()
        assert free_reduce([1, 2, -1]) == (1, 2, -1)
        assert free_reduce([2, -2, 3]) == (3,)

    def test_cyclic_reduce(self):
        assert cyclic_reduce([1, 2, -1]) == (2,)
        assert cyclic_reduce([1, 2, 3]) == (1, 2, 3)
        assert cyclic_reduce([1, -1]) == ()

    def test_invert(self):
        assert invert((1, -2, 3)) == (-3, 2, -1)
        assert free_reduce((1, 2) + invert((1, 2))) == ()


class TestPresentation:
    def test_disk(self, disk):
        pres = pi1_presentation(disk)
        # 3 vertices, spanning tree uses 2 edges: one generator, one relator
        assert pres.rank == 1
        assert len(pres.relators) == 1

    def test_circle(self, circle):
        pres = pi1_presentation(circle)
        assert pres.rank == 1
        assert pres.relators == ()

    def test_wedge_of_two_circles(self):
        k = SimplicialComplex(
            [("a", "b"), ("b", "c"), ("c", "a"), ("a", "d"), ("d", "e"), ("e", "a")]
        )
        pres = pi1_presentation(k)
        assert pres.rank == 2  # free group F2

    def test_disconnected_rejected(self):
        k = SimplicialComplex([("a", "b"), ("c", "d")])
        with pytest.raises(ValueError):
            pi1_presentation(k)

    def test_edge_letter(self, circle):
        pres = pi1_presentation(circle)
        (gen,) = pres.generators
        a, b = gen.sorted_vertices()
        assert pres.edge_letter(a, b) == (1,)
        assert pres.edge_letter(b, a) == (-1,)
        with pytest.raises(KeyError):
            pres.edge_letter("a", "zz")

    def test_tree_plus_generators_cover_edges(self, disk):
        pres = pi1_presentation(disk)
        assert len(pres.tree_edges) + pres.rank == len(disk.simplices(dim=1))


class TestLoopWord:
    def test_tree_loops_are_trivial_words(self, disk):
        pres = pi1_presentation(disk, base="a")
        # a path going out and back along tree edges
        a, b = pres.tree_edges[0].sorted_vertices()
        assert loop_word(pres, [a, b, a]) == ()

    def test_requires_closed_path(self, circle):
        pres = pi1_presentation(circle)
        with pytest.raises(ValueError):
            loop_word(pres, ["a", "b"])

    def test_circle_loop_is_generator(self, circle):
        pres = pi1_presentation(circle, base="a")
        w = loop_word(pres, ["a", "b", "c", "a"])
        assert len(w) == 1


class TestNullHomotopy:
    def test_disk_boundary_contractible(self, disk):
        assert is_null_homotopic(disk, ["a", "b", "c", "a"]) is True

    def test_circle_loop_not_contractible(self, circle):
        assert is_null_homotopic(circle, ["a", "b", "c", "a"]) is False

    def test_backtracking_loop_trivial(self, circle):
        assert is_null_homotopic(circle, ["a", "b", "a"]) is True

    def test_two_triangles_boundary(self, two_triangles):
        assert is_null_homotopic(two_triangles, ["a", "b", "d", "c", "a"]) is True

    def test_annulus_core_refuted(self):
        from repro.tasks.zoo import annulus_loop

        loop = annulus_loop()
        assert is_null_homotopic(loop.complex, list(loop.full_cycle())) is False

    def test_projective_plane_loop_refuted_by_torsion(self):
        # the RP² loop is 2-torsion: nonzero in H1(Z), so refuted soundly
        from repro.tasks.zoo import projective_plane_loop

        loop = projective_plane_loop()
        assert is_null_homotopic(loop.complex, list(loop.full_cycle())) is False

    def test_hourglass_boundary_contractible(self, hourglass):
        # the boundary walk of the hourglass output is contractible —
        # the geometric reason the colorless-ACT condition holds (Sect. 6.1)
        from repro.topology.simplex import Vertex

        o = hourglass.output_complex
        a0, a1 = Vertex(0, 0), Vertex(0, 1)
        b0, b1, b2 = Vertex(1, 0), Vertex(1, 1), Vertex(1, 2)
        c0, c1, c2 = Vertex(2, 0), Vertex(2, 1), Vertex(2, 2)
        walk = [a0, b1, a1, b0, c2, b2, c0, a1, c1, a0]
        assert is_null_homotopic(o, walk) is True

    def test_open_path_rejected(self, disk):
        with pytest.raises(ValueError):
            is_null_homotopic(disk, ["a", "b"])
