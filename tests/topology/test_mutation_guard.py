"""Structural state of a complex is frozen once memoization can observe it.

Regression test for the cache-desync hazard: ``SimplicialComplex`` answers
queries from a per-instance memo, so rebinding ``_facets``/``_simplices``
after construction would leave stale answers silently wrong.  The slots
are therefore frozen after ``__init__``; ``_hash``/``_cache``/``name``
stay writable (they carry no structural meaning).
"""

import pytest

from repro.topology.complexes import SimplicialComplex
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import chrom


@pytest.fixture()
def cx():
    return SimplicialComplex([chrom((0, "a"), (1, "b"), (2, "c"))], name="K")


@pytest.mark.parametrize("slot", ["_simplices", "_facets", "_vertices", "_dim"])
def test_structural_slots_frozen(cx, slot):
    with pytest.raises(AttributeError, match="frozen after construction"):
        setattr(cx, slot, None)


@pytest.mark.parametrize("slot", ["_simplices", "_facets", "_vertices", "_dim"])
def test_structural_slots_undeletable(cx, slot):
    with pytest.raises(AttributeError, match="frozen after construction"):
        delattr(cx, slot)


def test_guard_fires_after_memoized_query(cx):
    # the dangerous ordering: query (populates the memo), then mutate
    assert cx.is_pure()
    with pytest.raises(AttributeError):
        cx._facets = ()
    assert cx.is_pure()  # memoized answer still stands, and still correct


def test_name_stays_writable(cx):
    cx.name = "renamed"
    assert cx.name == "renamed"
    del cx.name


def test_chromatic_subclass_inherits_guard():
    cc = ChromaticComplex([chrom((0, 0), (1, 1))])
    with pytest.raises(AttributeError, match="frozen"):
        cc._dim = 5


def test_construction_still_works_normally():
    # the guard must not interfere with __init__'s first assignments
    cx = SimplicialComplex([chrom((0, "x"))])
    assert cx.dim == 0
    assert len(cx.facets) == 1
