"""Unit tests for DOT export."""

from repro.topology.complexes import SimplicialComplex
from repro.topology.dot import complex_to_dot, write_dot
from repro.topology.simplex import chrom


class TestDotExport:
    def test_contains_all_vertices_and_edges(self, disk):
        dot = complex_to_dot(disk)
        assert dot.count("--") == 3
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")

    def test_chromatic_fill_colors(self):
        k = SimplicialComplex([chrom((0, "a"), (1, "b"))])
        dot = complex_to_dot(k)
        assert "fillcolor" in dot
        assert "0:'a'" in dot

    def test_dashed_bare_edges(self):
        k = SimplicialComplex([("a", "b", "c"), ("c", "d")])
        dot = complex_to_dot(k)
        assert "style=dashed" in dot
        assert "style=solid" in dot

    def test_name_override(self, disk):
        assert 'graph "mygraph"' in complex_to_dot(disk, name="mygraph")

    def test_write_dot(self, disk, tmp_path):
        path = tmp_path / "out.dot"
        write_dot(disk, str(path))
        text = path.read_text()
        assert text.startswith("graph")
        assert text.endswith("}\n")
