"""Unit tests for subdivisions (chromatic and barycentric)."""

import pytest

from repro.topology.chromatic import ChromaticComplex
from repro.topology.complexes import SimplicialComplex
from repro.topology.simplex import Simplex, Vertex, chrom
from repro.topology.subdivision import (
    Barycenter,
    barycentric_subdivision,
    chromatic_subdivision,
    chromatic_subdivision_of_simplex,
    iterated_barycentric_subdivision,
    iterated_chromatic_subdivision,
    ordered_partitions,
)


class TestOrderedPartitions:
    @pytest.mark.parametrize(
        "n,count", [(0, 1), (1, 1), (2, 3), (3, 13), (4, 75)]
    )
    def test_fubini_numbers(self, n, count):
        assert sum(1 for _ in ordered_partitions(range(n))) == count

    def test_blocks_partition_the_set(self):
        for blocks in ordered_partitions({1, 2, 3}):
            union = set()
            for b in blocks:
                assert b, "blocks must be nonempty"
                assert not (union & b), "blocks must be disjoint"
                union |= b
            assert union == {1, 2, 3}

    def test_all_distinct(self):
        parts = list(ordered_partitions({1, 2, 3}))
        assert len(parts) == len(set(parts))


class TestChromaticSubdivision:
    def test_triangle_counts(self, triangle_complex):
        sub = chromatic_subdivision(triangle_complex)
        assert len(sub.complex.facets) == 13
        assert len(sub.complex.vertices) == 12
        assert sub.complex.is_pure()
        assert sub.complex.is_chromatic()

    def test_edge_counts(self):
        k = ChromaticComplex([chrom((0, "x"), (1, "y"))])
        sub = chromatic_subdivision(k)
        assert len(sub.complex.facets) == 3
        assert len(sub.complex.vertices) == 4

    def test_single_vertex(self):
        k = ChromaticComplex([chrom((0, "x"))])
        sub = chromatic_subdivision(k)
        assert len(sub.complex.vertices) == 1

    def test_of_simplex_helper(self, triangle):
        assert len(chromatic_subdivision_of_simplex(triangle).facets) == 13

    def test_of_simplex_rejects_colorless(self):
        with pytest.raises(ValueError):
            chromatic_subdivision_of_simplex(Simplex(["a", "b"]))

    def test_preserves_euler_characteristic(self, triangle_complex):
        sub = chromatic_subdivision(triangle_complex)
        assert sub.complex.euler_characteristic() == 1

    def test_is_link_connected(self, triangle_complex):
        assert chromatic_subdivision(triangle_complex).complex.is_link_connected()

    def test_glues_across_shared_edge(self):
        shared = ChromaticComplex(
            [
                chrom((0, "a"), (1, "b"), (2, "c")),
                chrom((0, "a"), (1, "b"), (2, "c'")),
            ]
        )
        sub = chromatic_subdivision(shared)
        assert len(sub.complex.facets) == 26
        # the shared edge's subdivision vertices appear once, not twice
        assert sub.complex.is_connected()

    def test_carrier_images(self, triangle_complex, triangle):
        sub = chromatic_subdivision(triangle_complex)
        edge = Simplex(list(triangle.sorted_vertices())[:2])
        img = sub.carrier(edge)
        assert len(img.facets) == 3
        assert img.is_subcomplex_of(sub.complex)

    def test_carrier_is_monotonic_and_chromatic(self, triangle_complex):
        sub = chromatic_subdivision(triangle_complex)
        assert sub.carrier.is_monotonic()
        assert sub.carrier.is_chromatic()

    def test_vertex_views_are_faces_of_base(self, triangle_complex, triangle):
        sub = chromatic_subdivision(triangle_complex)
        for w in sub.complex.vertices:
            assert w.value <= triangle
            assert w.color in w.value.colors()


class TestIteratedChromatic:
    def test_zero_rounds_identity(self, triangle_complex):
        sub = iterated_chromatic_subdivision(triangle_complex, 0)
        assert sub.complex == triangle_complex
        assert sub.carrier_of_vertex(triangle_complex.vertices[0]) == Simplex(
            [triangle_complex.vertices[0]]
        )

    def test_negative_rejected(self, triangle_complex):
        with pytest.raises(ValueError):
            iterated_chromatic_subdivision(triangle_complex, -1)

    def test_two_rounds_facets(self, triangle_complex):
        sub = iterated_chromatic_subdivision(triangle_complex, 2)
        assert len(sub.complex.facets) == 169

    def test_carrier_composition(self, triangle_complex, triangle):
        sub = iterated_chromatic_subdivision(triangle_complex, 2)
        edge = Simplex(list(triangle.sorted_vertices())[:2])
        assert len(sub.carrier(edge).facets) == 9  # Ch^2 of an edge

    def test_carrier_of_vertex_resolves_to_base(self, triangle_complex, triangle):
        sub = iterated_chromatic_subdivision(triangle_complex, 2)
        for w in sub.complex.vertices:
            carrier = sub.carrier_of_vertex(w)
            assert carrier <= triangle


class TestBarycentric:
    def test_triangle_counts(self, triangle_complex):
        sub = barycentric_subdivision(triangle_complex)
        assert len(sub.complex.facets) == 6
        assert len(sub.complex.vertices) == 7

    def test_vertices_are_barycenters(self, triangle_complex):
        sub = barycentric_subdivision(triangle_complex)
        assert all(isinstance(v, Barycenter) for v in sub.complex.vertices)

    def test_carrier_of_vertex(self, triangle_complex, triangle):
        sub = barycentric_subdivision(triangle_complex)
        center = Barycenter(triangle)
        assert sub.carrier_of_vertex(center) == triangle

    def test_carrier_images(self, triangle_complex, triangle):
        sub = barycentric_subdivision(triangle_complex)
        edge = Simplex(list(triangle.sorted_vertices())[:2])
        img = sub.carrier(edge)
        assert len(img.facets) == 2  # an edge splits in two

    def test_iterated(self, triangle_complex):
        sub = iterated_barycentric_subdivision(triangle_complex, 2)
        assert len(sub.complex.facets) == 36
        with pytest.raises(ValueError):
            iterated_barycentric_subdivision(triangle_complex, -2)

    def test_euler_preserved(self, triangle_complex):
        sub = iterated_barycentric_subdivision(triangle_complex, 2)
        assert sub.complex.euler_characteristic() == 1

    def test_colorless_domain_ok(self, disk):
        sub = barycentric_subdivision(disk)
        assert len(sub.complex.facets) == 6
