"""Round-trip and fault-tolerance tests for the persistent tower store.

:mod:`repro.topology.diskstore` is an accelerator, never a correctness
dependency: everything it serves must be byte-equal (as mathematics) to a
fresh recomputation, corruption must heal silently, and every disable
switch — programmatic, environment, or the in-memory caching gate — must
bypass it completely.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.analysis import run_census
from repro.obs import tracing
from repro.splitting.pipeline import TransformResult, link_connected_form
from repro.tasks.zoo.random_tasks import random_single_input_task
from repro.topology import cache_clear, caching_disabled, diskstore
from repro.topology.complexes import SimplicialComplex
from repro.topology.subdivision import SubdivisionTower, barycentric_subdivision


@pytest.fixture()
def store(tmp_path):
    """An isolated, enabled store directory for one test."""
    path = str(tmp_path / "store")
    with diskstore.store_at(path):
        yield path


def _tower_fingerprint(result):
    """The mathematical content of a SubdivisionResult, identity-free."""
    return (
        result.base.facets,
        result.complex.facets,
        tuple((s, result.carrier(s).facets) for s in result.base.simplices()),
    )


# -- directory resolution and gating -------------------------------------------


class TestResolution:
    def test_explicit_argument_wins(self, store):
        assert diskstore.resolve_store_dir("/elsewhere") == "/elsewhere"

    def test_store_at_overrides_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskstore.ENV_VAR, "/from-env")
        with diskstore.store_at(str(tmp_path / "o")) as path:
            assert diskstore.resolve_store_dir() == path
        assert diskstore.resolve_store_dir() == "/from-env"

    def test_environment_then_default(self, monkeypatch):
        monkeypatch.setenv(diskstore.ENV_VAR, "/from-env")
        assert diskstore.resolve_store_dir() == "/from-env"
        monkeypatch.delenv(diskstore.ENV_VAR)
        assert diskstore.resolve_store_dir() == diskstore.DEFAULT_DIR

    @pytest.mark.parametrize("value", ["0", "off", "FALSE", " no ", "disabled"])
    def test_off_values_disable(self, value, monkeypatch):
        monkeypatch.setenv(diskstore.ENV_VAR, value)
        assert diskstore.resolve_store_dir() is None
        assert not diskstore.store_enabled()

    def test_store_disabled_context(self, store):
        assert diskstore.store_enabled()
        with diskstore.store_disabled():
            assert not diskstore.store_enabled()
            assert diskstore.load("tower", "anykey") is None
            assert diskstore.store("tower", "anykey", object()) is None
        assert diskstore.store_enabled()

    def test_caching_disabled_bypasses_the_disk_too(self, store):
        # uncached benchmark baselines must not be quietly served from disk
        with caching_disabled():
            assert not diskstore.store_enabled()

    def test_set_store_returns_previous(self, store):
        assert diskstore.set_store(False) is True
        assert diskstore.set_store(True) is False


# -- raw load/store ------------------------------------------------------------


class TestRawRoundTrip:
    def test_round_trip(self, store):
        key = diskstore.content_hash("payload")
        assert diskstore.load("tower", key) is None  # cold miss
        path = diskstore.store("tower", key, {"answer": 42})
        assert path is not None and os.path.exists(path)
        assert diskstore.load("tower", key) == {"answer": 42}

    def test_namespaces_do_not_collide(self, store):
        key = diskstore.content_hash("same-key")
        diskstore.store("tower", key, "a tower")
        diskstore.store("transform", key, "a transform")
        assert diskstore.load("tower", key) == "a tower"
        assert diskstore.load("transform", key) == "a transform"

    def test_unpicklable_objects_are_swallowed(self, store):
        key = diskstore.content_hash("lambda")
        assert diskstore.store("tower", key, lambda: None) is None
        assert diskstore.load("tower", key) is None

    def test_content_keys_are_stable_and_distinct(self):
        k1 = SimplicialComplex([("a", "b"), ("b", "c")])
        k2 = SimplicialComplex([("b", "c"), ("a", "b")])  # same complex
        k3 = SimplicialComplex([("a", "c")])
        assert diskstore.complex_key(k1) == diskstore.complex_key(k2)
        assert diskstore.complex_key(k1) != diskstore.complex_key(k3)


# -- subdivision towers --------------------------------------------------------


class TestTowerPersistence:
    def test_cold_write_then_warm_read_is_identical(self, store):
        k = SimplicialComplex([("a", "b", "c")])
        cold = SubdivisionTower(k, barycentric_subdivision).level(2)
        # a brand-new tower (no in-memory levels) must load, not rebuild
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.hit", 0)
            warm = SubdivisionTower(k, barycentric_subdivision).level(2)
            assert rec.counters.get("diskstore.tower.hit", 0) == before + 1
        assert _tower_fingerprint(warm) == _tower_fingerprint(cold)

    def test_corrupted_entries_recompute_and_heal(self, store):
        k = SimplicialComplex([("a", "b", "c")])
        cold = SubdivisionTower(k, barycentric_subdivision).level(2)
        entries = glob.glob(os.path.join(store, "tower", "*", "*.pkl"))
        assert entries
        for path in entries:
            with open(path, "wb") as fh:
                fh.write(b"not a pickle")
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.corrupt", 0)
            again = SubdivisionTower(k, barycentric_subdivision).level(2)
            corrupted = rec.counters.get("diskstore.tower.corrupt", 0) - before
        assert corrupted >= 1
        assert _tower_fingerprint(again) == _tower_fingerprint(cold)
        # the torn entries were replaced by fresh, loadable ones
        healed = glob.glob(os.path.join(store, "tower", "*", "*.pkl"))
        assert healed
        final = SubdivisionTower(k, barycentric_subdivision).level(2)
        assert _tower_fingerprint(final) == _tower_fingerprint(cold)

    def test_persist_false_never_touches_the_disk(self, store):
        k = SimplicialComplex([("a", "b", "c")])
        SubdivisionTower(k, barycentric_subdivision, persist=False).level(2)
        assert not glob.glob(os.path.join(store, "tower", "*", "*.pkl"))


# -- transform and verdict caches ----------------------------------------------


class TestPipelineCaches:
    def test_transform_round_trip(self, store):
        task = random_single_input_task(3)
        cold = link_connected_form(task)
        cache_clear()
        with tracing() as rec:
            before = rec.counters.get("diskstore.transform.hit", 0)
            warm = link_connected_form(random_single_input_task(3))
            assert rec.counters.get("diskstore.transform.hit", 0) == before + 1
        assert isinstance(warm, TransformResult)
        assert warm.task.output_complex.facets == cold.task.output_complex.facets
        assert warm.n_splits == cold.n_splits

    def test_census_verdicts_round_trip(self, store):
        seeds = range(6)
        cold = run_census(seeds)
        cache_clear()
        with tracing() as rec:
            before = rec.counters.get("diskstore.verdict.hit", 0)
            warm = run_census(seeds)
            hits = rec.counters.get("diskstore.verdict.hit", 0) - before
        assert hits == len(seeds)
        assert warm.as_tuple() == cold.as_tuple()

    def test_census_with_store_off_matches_store_on(self, store):
        seeds = range(6)
        with_store = run_census(seeds)
        cache_clear()
        with diskstore.store_disabled():
            without = run_census(seeds)
        assert without.as_tuple() == with_store.as_tuple()


# -- failure taxonomy (I/O errors vs corruption vs bugs) ------------------------


class TestFailureTaxonomy:
    """I/O errors, corruption and programming errors are three animals.

    Regression tests for the old blanket ``except Exception`` handlers:
    an ``EACCES`` on a healthy entry must not delete it, a torn pickle
    must heal, and a genuine bug must propagate instead of reading as a
    cache miss.
    """

    def test_load_io_error_keeps_entry_warns_and_counts(
        self, store, monkeypatch
    ):
        import builtins

        key = diskstore.content_hash("healthy")
        path = diskstore.store("tower", key, "a healthy value")
        assert path is not None

        real_open = builtins.open

        def denied(file, *args, **kwargs):
            if str(file).endswith(".pkl"):
                raise PermissionError(13, "permission denied", str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", denied)
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.io_error", 0)
            with pytest.warns(RuntimeWarning, match="entry kept"):
                assert diskstore.load("tower", key) is None
            assert (
                rec.counters.get("diskstore.tower.io_error", 0) == before + 1
            )
        # the entry was NOT deleted: once the disk recovers, it still hits
        monkeypatch.setattr(builtins, "open", real_open)
        assert diskstore.load("tower", key) == "a healthy value"

    def test_load_corruption_heals_and_counts(self, store):
        key = diskstore.content_hash("torn")
        path = diskstore.store("tower", key, "soon torn")
        with open(path, "wb") as fh:
            fh.write(b"definitely not a pickle")
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.corrupt", 0)
            assert diskstore.load("tower", key) is None
            assert (
                rec.counters.get("diskstore.tower.corrupt", 0) == before + 1
            )
        # healed: the torn entry is gone, a rewrite round-trips
        assert not os.path.exists(path)
        diskstore.store("tower", key, "fresh value")
        assert diskstore.load("tower", key) == "fresh value"

    def test_load_programming_errors_propagate(self, store, monkeypatch):
        import pickle as pickle_mod

        key = diskstore.content_hash("buggy-load")
        diskstore.store("tower", key, "value")

        def broken(fh):
            raise KeyError("a bug in a __setstate__ hook")

        monkeypatch.setattr(pickle_mod, "load", broken)
        with pytest.raises(KeyError, match="__setstate__"):
            diskstore.load("tower", key)

    def test_store_io_error_warns_counts_and_returns_none(
        self, store, monkeypatch
    ):
        key = diskstore.content_hash("unwritable")

        def full_disk(src, dst):
            raise OSError(28, "no space left on device", dst)

        monkeypatch.setattr(os, "replace", full_disk)
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.io_error", 0)
            with pytest.warns(RuntimeWarning, match="cannot write"):
                assert diskstore.store("tower", key, "value") is None
            assert (
                rec.counters.get("diskstore.tower.io_error", 0) == before + 1
            )
        # the failed write left no temp litter behind
        assert not glob.glob(os.path.join(store, "tower", "*", "*.tmp"))

    def test_store_unpicklable_counts(self, store):
        key = diskstore.content_hash("unpicklable")
        with tracing() as rec:
            before = rec.counters.get("diskstore.tower.unpicklable", 0)
            assert diskstore.store("tower", key, lambda: None) is None
            assert (
                rec.counters.get("diskstore.tower.unpicklable", 0)
                == before + 1
            )

    def test_store_programming_errors_propagate_and_clean_up(
        self, store, monkeypatch
    ):
        import pickle as pickle_mod

        key = diskstore.content_hash("buggy-store")

        def broken(obj, fh, protocol=None):
            raise KeyError("a bug in a __reduce__ hook")

        monkeypatch.setattr(pickle_mod, "dump", broken)
        with pytest.raises(KeyError, match="__reduce__"):
            diskstore.store("tower", key, "value")
        assert not glob.glob(os.path.join(store, "tower", "*", "*.tmp"))
